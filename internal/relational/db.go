package relational

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Stats counts the work a DB has performed. The paper's performance analysis
// hinges on statements issued and rows scanned, so both are tracked.
type Stats struct {
	// Statements counts client-issued statements (Exec and Query calls).
	// Trigger bodies run inside the engine and are not counted, matching
	// the paper's distinction between application-level cascading deletes
	// and trigger-based deletes.
	Statements int64
	// TriggerFirings counts trigger body executions.
	TriggerFirings int64
	// RowsScanned counts rows visited by scans, index probes, and hash
	// builds.
	RowsScanned  int64
	RowsInserted int64
	RowsDeleted  int64
	RowsUpdated  int64
	// IndexProbes counts persistent-index probe operations; FullScans
	// counts full relation scan passes. Together they expose which access
	// path the executor chose.
	IndexProbes int64
	FullScans   int64
	// RangeProbes counts bounded B+tree range scans — the access path of
	// pos-window UPDATEs and sibling-window queries.
	RangeProbes int64
	// SortPasses counts blocking sort operators actually run; RowsSorted
	// counts the rows they buffered. Sort elision drives both toward zero
	// on ordered access paths.
	SortPasses int64
	RowsSorted int64
	// HashJoinBuilds counts transient hash tables built for equality joins
	// with no supporting index.
	HashJoinBuilds int64
	// PlanCacheHits/Misses count shape-cache lookups: a hit reuses a parsed
	// and planned statement template, a miss pays parse + plan.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// InternHits counts stored TEXT values that reused an existing intern
	// symbol; InternMisses counts new symbols minted (intern.go). Hits
	// dominating misses is what the symbol-keyed equality paths bank on —
	// and a zero InternHits on a shred-heavy workload means interning is
	// silently disabled.
	InternHits   int64
	InternMisses int64
	// ParallelWorkers counts worker goroutines launched by the parallel
	// executor (exchange scans, shared hash-join builds, CTE waves, DML
	// read phases); PartitionsScanned counts driving-level partitions
	// drained; ExchangeBatches counts row batches that crossed an exchange
	// channel. All three stay zero under the default serial execution —
	// a nonzero ParallelWorkers is the positive signal that a workload
	// actually engaged the fan-out (parallel.go).
	ParallelWorkers   int64
	PartitionsScanned int64
	ExchangeBatches   int64
	// SnapshotsTaken counts MVCC snapshots registered by explicit
	// transactions (Begin / SQL BEGIN). VersionChainHops counts version-chain
	// nodes walked by visibility checks — structurally zero while every table
	// is single-version, which is what keeps the read fast path unchanged.
	// WriteConflicts counts first-committer-wins aborts and intent
	// collisions; VersionsVacuumed counts row versions reclaimed once no
	// live snapshot could see them (mvcc.go).
	SnapshotsTaken   int64
	VersionChainHops int64
	WriteConflicts   int64
	VersionsVacuumed int64
	// Paged-storage buffer pool counters (paged.go), all zero on the
	// default memory backend. PageReads/PageWrites count physical page
	// I/O (a checkpoint's doublewrite and in-place passes both count);
	// PoolHits/PoolMisses count row-access residency checks; Evictions
	// counts pages dropped by the CLOCK sweep; DirtyFlushes counts dirty
	// pages written out by checkpoints.
	PageReads    int64
	PageWrites   int64
	PoolHits     int64
	PoolMisses   int64
	Evictions    int64
	DirtyFlushes int64
}

// statCounters is the live, concurrently updated form of Stats. Readers run
// under the shared lock and still count rows scanned and probes made, so
// every counter is an atomic; Stats() materializes a plain snapshot.
type statCounters struct {
	Statements      atomic.Int64
	TriggerFirings  atomic.Int64
	RowsScanned     atomic.Int64
	RowsInserted    atomic.Int64
	RowsDeleted     atomic.Int64
	RowsUpdated     atomic.Int64
	IndexProbes     atomic.Int64
	FullScans       atomic.Int64
	RangeProbes     atomic.Int64
	SortPasses      atomic.Int64
	RowsSorted      atomic.Int64
	HashJoinBuilds  atomic.Int64
	PlanCacheHits   atomic.Int64
	PlanCacheMisses atomic.Int64

	ParallelWorkers   atomic.Int64
	PartitionsScanned atomic.Int64
	ExchangeBatches   atomic.Int64

	SnapshotsTaken   atomic.Int64
	VersionChainHops atomic.Int64
	WriteConflicts   atomic.Int64
	VersionsVacuumed atomic.Int64

	PageReads    atomic.Int64
	PageWrites   atomic.Int64
	PoolHits     atomic.Int64
	PoolMisses   atomic.Int64
	Evictions    atomic.Int64
	DirtyFlushes atomic.Int64
}

// DB is an embedded relational database.
//
// Concurrency model: individual statements hold the writer lock exclusively;
// Query/QueryEach/Snapshot/Stats hold it shared. An explicit transaction
// (Begin / SQL BEGIN) no longer holds the writer lock between its
// statements: it takes an MVCC snapshot at Begin, marks the rows it writes
// with its transaction id, and readers evaluate row visibility against
// their snapshot (mvcc.go). Readers therefore only ever observe a committed
// version of the data — and they keep completing while a write transaction
// sits open, blocking at most for the duration of one statement. N
// goroutines can run Sorted-Outer-Union reconstruction concurrently,
// serializing only against individual writer statements, never against each
// other. Writers conflict first-committer-wins: per-table write intents
// make an overlapping second writer abort with ErrWriteConflict instead of
// blocking.
type DB struct {
	// mu is the data-plane reader/writer lock described above.
	mu sync.RWMutex
	// stmtMu guards the shape cache (stmts): both read and write paths
	// populate it, so it needs its own lock under concurrent readers.
	stmtMu sync.Mutex
	// planMu guards the plan caches living on shared AST nodes
	// (SimpleSelect.plan, SelectStmt.wants, DML plan slots, the physical
	// access cache): concurrent readers compile plans for the same cached
	// statement template.
	planMu sync.Mutex

	tables   map[string]*Table
	triggers map[string]*trigger   // by lower-case name
	byTable  map[string][]*trigger // firing order = creation order
	stats    statCounters

	// intern is the DB's string intern table (intern.go); nil after
	// DisableInterning, which every consumer treats as "nothing interns and
	// nothing is interned" (symKey degrades to joinKey). Set once at
	// construction, so readers use it without coordination.
	intern *internTable

	// sortPool recycles sortIter scratch (row headers plus the flat Value
	// arena) across sort executions, so a blocking sort's per-row copies
	// write into a reused arena instead of allocating per row (iter.go).
	sortPool sync.Pool

	// parallelism is the per-statement worker budget (SetParallelism /
	// Options.Parallelism); <= 1 means serial, the default. Read under
	// db.mu in any mode, written under the exclusive lock. parActive
	// counts workers currently running so nested constructs degrade to
	// serial instead of oversubscribing the budget (parallel.go).
	parallelism int
	parActive   atomic.Int64

	// stmts caches parsed statement templates by shape (prepare.go).
	// Compiled plans live on the AST nodes themselves (plan.go), so they
	// share the template's lifetime; schemaVer invalidates them when DDL
	// changes what names resolve to.
	stmts     map[string]*cachedStmt
	schemaVer int64

	// undo is the active transaction's undo log (txn.go); non-nil exactly
	// while a statement is executing under the exclusive lock. Accessed
	// only under the exclusive lock.
	undo *undoLog
	// MVCC state (mvcc.go), all guarded by the writer lock. commitTS is the
	// last committed transaction stamp; nextTxn numbers transactions for row
	// marks. snaps maps open explicit transactions to their snapshot stamps
	// (its minimum is the vacuum horizon). writer is the write context of
	// the statement currently executing under the exclusive lock; row
	// mutations route through it to decide physical vs versioned form.
	// intentCh is closed and replaced whenever write intents release, waking
	// autocommit statements queued behind an explicit transaction's intent.
	// pendingVac queues committed version chains for the next vacuum pass.
	commitTS   uint64
	nextTxn    uint64
	snaps      map[uint64]uint64
	writer     *writeCtx
	intentCh   chan struct{}
	pendingVac []vacRec
	// sqlTx is the transaction opened by a SQL-level BEGIN through DB.Exec,
	// which subsequent DB.Exec calls join (single-session semantics).
	// Atomic because the joining check runs before the lock is taken.
	sqlTx atomic.Pointer[Tx]

	// wal, when non-nil, is the redo log of a DB opened with Open(dir, …)
	// (durable.go); commits append records to it under the writer lock and
	// wait for durability after releasing it. replaying marks recovery:
	// statements re-executed from the log maintain ddlHist but are not
	// re-appended. ddlHist is the compacted schema-statement history a
	// checkpoint carries (mutated at commit under the writer lock).
	wal       *wal.Log
	walOpts   Options
	replaying bool
	ddlHist   []ddlEntry
	// redoErr is sticky (guarded by the writer lock): once a commit record
	// is lost after its in-memory effects became visible, every later
	// commit fails rather than widen the memory/log divergence.
	redoErr error
	// obs is the published tracing configuration (trace.go); nil — the
	// default — means tracing is off, and the per-statement check is one
	// atomic load. obsMu serializes the copy-on-write updates that publish
	// it; nextHookID numbers OnTrace registrations for cancellation.
	obs        atomic.Pointer[obsState]
	obsMu      sync.Mutex
	nextHookID atomic.Uint64
	// met holds the always-on engine latency histograms (trace.go).
	// Non-nil for every DB.
	met *engineMetrics
	// ckptMu guards the auto-checkpoint lifecycle: ckptBusy admits one at
	// a time, closing stops new ones from starting, and ckptWG lets Close
	// join the in-flight one (Add only ever happens under ckptMu with
	// closing unset, so it cannot race Close's Wait). ckptErr remembers a
	// failed auto-checkpoint for Close to surface.
	ckptMu   sync.Mutex
	ckptBusy bool
	closing  bool
	ckptWG   sync.WaitGroup
	ckptErr  atomic.Pointer[error]

	// Paged storage state (paged.go): pool is the shared buffer pool (nil
	// on the default memory backend — every paged code path gates on it),
	// pagedDir is where page files and the doublewrite buffer live, and
	// pageErr is the sticky page-I/O failure that poisons the DB rather
	// than let statements run over silently missing rows. ckptHook is a
	// test seam: crash-injection tests fail a paged checkpoint at a named
	// stage to exercise every recovery window.
	pool     *pagePool
	pagedDir string
	pageErr  atomic.Pointer[error]
	ckptHook func(stage string) error
	// pagedCkptMu serializes whole paged checkpoints with each other and
	// with Restore's wholesale rebuild of paged state: the checkpoint's
	// durable phase runs outside db.mu by design, and a Restore truncating
	// pg.pages under it would leave finishFlush indexing stale page ids.
	// Ordering: pagedCkptMu is always taken before db.mu.
	pagedCkptMu sync.Mutex
}

type trigger struct {
	name   string
	table  string
	perRow bool
	body   Stmt
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		triggers: make(map[string]*trigger),
		byTable:  make(map[string][]*trigger),
		stmts:    make(map[string]*cachedStmt),
		intern:   &internTable{},
		snaps:    make(map[uint64]uint64),
		intentCh: make(chan struct{}),
		met:      newEngineMetrics(),
	}
}

// DisableInterning turns string interning off for the DB's lifetime: stored
// TEXT values keep their full byte paths for equality, hashing, and
// DISTINCT. This is the ablation switch the intern benchmarks and
// equivalence tests flip; call it before loading data (values interned
// earlier keep their symbols, which remain correct but stop being minted).
func (db *DB) DisableInterning() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.intern = nil
}

// internArgs resolves bound TEXT arguments against the intern table —
// lookup only, so ad-hoc query literals never grow the table. A lifted
// literal that names a stored string picks up its symbol here, which is
// what lets an equality predicate or index probe compare ids instead of
// bytes against interned rows. Symbols are overwritten, not merged: an
// argument slice reused across DB handles must not smuggle another table's
// ids into this one's pipelines.
func (db *DB) internArgs(args []Value) {
	it := db.intern
	for i := range args {
		if args[i].kind != KindText {
			continue
		}
		if it != nil {
			args[i].sym = it.lookup(args[i].s)
		} else {
			args[i].sym = 0
		}
	}
}

// Stats returns a snapshot of the work counters.
func (db *DB) Stats() Stats {
	s := Stats{
		Statements:      db.stats.Statements.Load(),
		TriggerFirings:  db.stats.TriggerFirings.Load(),
		RowsScanned:     db.stats.RowsScanned.Load(),
		RowsInserted:    db.stats.RowsInserted.Load(),
		RowsDeleted:     db.stats.RowsDeleted.Load(),
		RowsUpdated:     db.stats.RowsUpdated.Load(),
		IndexProbes:     db.stats.IndexProbes.Load(),
		FullScans:       db.stats.FullScans.Load(),
		RangeProbes:     db.stats.RangeProbes.Load(),
		SortPasses:      db.stats.SortPasses.Load(),
		RowsSorted:      db.stats.RowsSorted.Load(),
		HashJoinBuilds:  db.stats.HashJoinBuilds.Load(),
		PlanCacheHits:   db.stats.PlanCacheHits.Load(),
		PlanCacheMisses: db.stats.PlanCacheMisses.Load(),

		ParallelWorkers:   db.stats.ParallelWorkers.Load(),
		PartitionsScanned: db.stats.PartitionsScanned.Load(),
		ExchangeBatches:   db.stats.ExchangeBatches.Load(),

		SnapshotsTaken:   db.stats.SnapshotsTaken.Load(),
		VersionChainHops: db.stats.VersionChainHops.Load(),
		WriteConflicts:   db.stats.WriteConflicts.Load(),
		VersionsVacuumed: db.stats.VersionsVacuumed.Load(),

		PageReads:    db.stats.PageReads.Load(),
		PageWrites:   db.stats.PageWrites.Load(),
		PoolHits:     db.stats.PoolHits.Load(),
		PoolMisses:   db.stats.PoolMisses.Load(),
		Evictions:    db.stats.Evictions.Load(),
		DirtyFlushes: db.stats.DirtyFlushes.Load(),
	}
	if it := db.intern; it != nil {
		s.InternHits = it.hits.Load()
		s.InternMisses = it.misses.Load()
	}
	return s
}

// ResetStats zeroes the work counters.
func (db *DB) ResetStats() {
	db.stats.Statements.Store(0)
	db.stats.TriggerFirings.Store(0)
	db.stats.RowsScanned.Store(0)
	db.stats.RowsInserted.Store(0)
	db.stats.RowsDeleted.Store(0)
	db.stats.RowsUpdated.Store(0)
	db.stats.IndexProbes.Store(0)
	db.stats.FullScans.Store(0)
	db.stats.RangeProbes.Store(0)
	db.stats.SortPasses.Store(0)
	db.stats.RowsSorted.Store(0)
	db.stats.HashJoinBuilds.Store(0)
	db.stats.PlanCacheHits.Store(0)
	db.stats.PlanCacheMisses.Store(0)
	db.stats.ParallelWorkers.Store(0)
	db.stats.PartitionsScanned.Store(0)
	db.stats.ExchangeBatches.Store(0)
	db.stats.SnapshotsTaken.Store(0)
	db.stats.VersionChainHops.Store(0)
	db.stats.WriteConflicts.Store(0)
	db.stats.VersionsVacuumed.Store(0)
	db.stats.PageReads.Store(0)
	db.stats.PageWrites.Store(0)
	db.stats.PoolHits.Store(0)
	db.stats.PoolMisses.Store(0)
	db.stats.Evictions.Store(0)
	db.stats.DirtyFlushes.Store(0)
	if it := db.intern; it != nil {
		it.hits.Store(0)
		it.misses.Store(0)
	}
}

// Table returns the named table, or nil.
//
// This is an escape hatch: the returned *Table is not synchronized, so
// direct mutations bypass both the writer lock and the transaction undo
// log, and direct reads race with concurrent writers. Callers must either
// hold no concurrent statements (setup, tests, benchmark restore points) or
// use the SQL surface / RowCount instead.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// RowCount returns the number of live rows in the named table (0 when
// absent) under the shared lock — safe against a concurrent writer, unlike
// counting through the Table escape hatch.
func (db *DB) RowCount(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t := db.tables[strings.ToLower(name)]; t != nil {
		return t.live
	}
	return 0
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Exec executes a statement, returning the number of affected rows
// (inserted, deleted, or updated). Statements are resolved through the
// shape-keyed prepared-plan cache: repeated statement templates differing
// only in literal values parse and plan once.
//
// Every top-level Exec runs in an implicit per-statement transaction: a
// mid-statement error (a unique violation on the nth row, a coercion
// failure after earlier assignments) rolls the statement back completely
// instead of leaving earlier row mutations behind. BEGIN opens a SQL-level
// transaction that subsequent Exec calls join until COMMIT or ROLLBACK;
// while it is open the DB handle is single-session (concurrent use of Exec
// is the caller's misuse; DB.Query joins the transaction and sees its
// uncommitted writes).
func (db *DB) Exec(sql string) (int, error) {
	if tx := db.sqlTx.Load(); tx != nil {
		n, err := tx.Exec(sql)
		if err != errTxDone {
			return n, err
		}
		// The transaction ended between the check and the join; fall
		// through to autocommit execution.
	}
	start := time.Now()
	qt := db.traceBegin("exec", sql)
	n, lsn, err, done := db.execAutocommitLocked(sql, qt)
	if done || err != nil {
		db.traceFinish(qt, n, err)
		return n, err
	}
	// The fsync wait happens here, outside the lock: readers blocked on the
	// statement see its effects as soon as the in-memory commit finishes,
	// and never wait behind the disk.
	err = db.afterCommit(lsn, qt)
	if err == nil {
		db.met.commit.ObserveSince(start)
	}
	db.traceFinish(qt, n, err)
	return n, err
}

// execAutocommitLocked is Exec's writer-lock critical section. The unlock
// is deferred so a panic inside statement execution cannot strand the
// exclusive lock. done=true means the caller has nothing left to do
// (transaction control, or an error).
func (db *DB) execAutocommitLocked(sql string, qt *QueryTrace) (n int, lsn uint64, err error, done bool) {
	lockStart := time.Now()
	db.mu.Lock()
	db.met.lockWait.ObserveSince(lockStart)
	defer db.mu.Unlock()
	if qt != nil {
		qt.LockWait = time.Since(lockStart)
	}
	prepStart := time.Now()
	stmt, args, hit, err := db.prepared(sql)
	if err != nil {
		return 0, 0, err, true
	}
	if qt != nil {
		qt.CacheHit = hit
		if !hit {
			qt.Parse = time.Since(prepStart)
		}
	}
	switch stmt.(type) {
	case *BeginStmt:
		// The new SQL-level transaction takes an MVCC snapshot and claims
		// write intents lazily; it does not hold the writer lock between
		// statements (mvcc.go).
		db.stats.Statements.Add(1)
		db.beginLocked(true)
		return 0, 0, nil, true
	case *CommitStmt, *RollbackStmt:
		return 0, 0, fmt.Errorf("relational: no open transaction"), true
	}
	db.stats.Statements.Add(1)
	n, lsn, err = db.runAutocommit(stmt, args, sql, nil, qt, nil)
	return n, lsn, err, false
}

// runAutocommit executes one statement under its own implicit transaction,
// appending its redo record (src text, or src shape plus logArgs for
// prepared statements) to the log on success. The returned LSN is what the
// caller passes to afterCommit once the writer lock is released. Caller
// holds the writer lock; the lock is held on return, but may have been
// released and reacquired while waiting behind an explicit transaction's
// write intent.
func (db *DB) runAutocommit(stmt Stmt, args []Value, src string, logArgs []Value, qt *QueryTrace, an *analyzeRun) (int, uint64, error) {
	log := newUndoLog()
	for {
		env := newEnv(nil)
		env.args = args
		env.an = an
		// While explicit transactions hold snapshots, writes go down the
		// versioned path so those snapshots keep their view; with none open
		// the statement mutates physically, exactly as before MVCC. The
		// implicit transaction reads latest-committed (allTS): it runs under
		// the exclusive lock, so that is a consistent snapshot.
		var w *writeCtx
		if len(db.snaps) > 0 {
			db.nextTxn++
			w = &writeCtx{txnID: db.nextTxn, snapTS: allTS}
			db.writer = w
			env.snap = snapshot{ts: allTS, self: w.txnID}
		}
		var execStart time.Time
		if qt != nil {
			execStart = time.Now()
		}
		db.undo = log
		n, err := db.execStmt(stmt, env)
		db.undo = nil
		db.writer = nil
		if qt != nil {
			qt.Execute += time.Since(execStart)
		}
		if err == nil {
			var commitStart time.Time
			if qt != nil {
				commitStart = time.Now()
			}
			stamp := db.stampCommitLocked(log, w)
			if w != nil {
				db.releaseIntentsLocked(w)
				db.vacuumPendingLocked()
			}
			log.commit()
			var lsn uint64
			if db.durable() {
				if logged, note := classifyStmt(stmt); logged {
					lsn, err = db.applyRedoLocked([]redoStmt{{sql: src, args: logArgs, note: note}}, stamp)
					if err != nil {
						return 0, 0, fmt.Errorf("relational: logging commit: %w", err)
					}
				}
			}
			if qt != nil {
				qt.Commit += time.Since(commitStart)
			}
			return n, lsn, nil
		}
		log.rollbackTo(0)
		if w != nil {
			db.releaseIntentsLocked(w)
		}
		if !errors.Is(err, errIntentBusy) {
			return 0, 0, err
		}
		// An explicit transaction holds a write intent on a table this
		// statement needs. Autocommit statements wait rather than abort:
		// capture the broadcast channel under the lock, wait unlocked (so
		// the intent holder can commit), then retry from scratch.
		ch := db.intentCh
		db.mu.Unlock()
		waitStart := time.Now()
		<-ch
		db.met.intentWait.ObserveSince(waitStart)
		db.met.intentRetries.Add(1)
		if qt != nil {
			qt.IntentWait += time.Since(waitStart)
			qt.Retries++
		}
		db.mu.Lock()
	}
}

// Query executes a SELECT, returning its result rows. Like Exec, it reuses
// cached statement templates by shape. Queries take the shared lock: any
// number of them run concurrently, serialized only against individual
// writer statements — and since uncommitted writes are marked with their
// transaction id, a query always observes a committed version of the
// database, even while a write transaction sits open (mvcc.go). During an
// open SQL-level transaction the query joins it, like Exec does
// (single-session semantics: it sees the transaction's uncommitted writes);
// handle transactions (Begin) are not joined, so concurrent readers keep
// full isolation there.
func (db *DB) Query(sql string) (*Rows, error) {
	if rows, handled, err := db.dispatchExplain(sql); handled {
		return rows, err
	}
	if tx := db.sqlTx.Load(); tx != nil {
		rows, err := tx.Query(sql)
		if err != errTxDone {
			return rows, err
		}
		// The transaction ended between the check and the join; fall
		// through to a normal committed-state read.
	}
	qt := db.traceBegin("query", sql)
	rows, err := db.queryLocked(sql, qt)
	n := 0
	if rows != nil {
		n = len(rows.Data)
	}
	db.traceFinish(qt, n, err)
	return rows, err
}

// queryLocked is Query's shared-lock critical section.
func (db *DB) queryLocked(sql string, qt *QueryTrace) (*Rows, error) {
	var lockStart time.Time
	if qt != nil {
		lockStart = time.Now()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if qt != nil {
		qt.LockWait = time.Since(lockStart)
	}
	var prepStart time.Time
	if qt != nil {
		prepStart = time.Now()
	}
	stmt, args, hit, err := db.prepared(sql)
	if err != nil {
		return nil, err
	}
	if qt != nil {
		qt.CacheHit = hit
		if !hit {
			qt.Parse = time.Since(prepStart)
		}
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", stmt)
	}
	db.stats.Statements.Add(1)
	env := newEnv(nil)
	env.args = args
	return db.execSelect(sel, env)
}

// QueryEach executes a SELECT, streaming each result row to fn as the
// pipeline produces it instead of materializing the result set — with sort
// elision, an ordered query's first row arrives before the last is read.
// fn must not issue statements on the same DB (a shared lock is held). The
// row slice is reused between calls (the pipeline's buffer-reuse contract;
// this is what makes streaming reads allocation-free per row): fn must
// copy the slice to retain it, though retaining individual Values is
// always safe. It returns the output column names. Like Query, it joins an
// open SQL-level transaction.
func (db *DB) QueryEach(sql string, fn func(row []Value) error) ([]string, error) {
	if tx := db.sqlTx.Load(); tx != nil {
		cols, err := tx.QueryEach(sql, fn)
		if err != errTxDone {
			return cols, err
		}
	}
	qt := db.traceBegin("query-each", sql)
	rows := 0
	if qt != nil {
		// Count streamed rows for the trace without touching the untraced
		// path's call chain.
		inner := fn
		fn = func(row []Value) error {
			rows++
			return inner(row)
		}
	}
	cols, err := db.queryEachLocked(sql, qt, fn)
	db.traceFinish(qt, rows, err)
	return cols, err
}

// queryEachLocked is QueryEach's shared-lock critical section.
func (db *DB) queryEachLocked(sql string, qt *QueryTrace, fn func(row []Value) error) ([]string, error) {
	var lockStart time.Time
	if qt != nil {
		lockStart = time.Now()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if qt != nil {
		qt.LockWait = time.Since(lockStart)
	}
	var prepStart time.Time
	if qt != nil {
		prepStart = time.Now()
	}
	stmt, args, hit, err := db.prepared(sql)
	if err != nil {
		return nil, err
	}
	if qt != nil {
		qt.CacheHit = hit
		if !hit {
			qt.Parse = time.Since(prepStart)
		}
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: QueryEach requires a SELECT, got %T", stmt)
	}
	db.stats.Statements.Add(1)
	env := newEnv(nil)
	env.args = args
	return db.streamSelect(sel, env, fn)
}

// ExecPrepared runs a prepared statement in autocommit mode; it is the
// Session form of Prepared.Exec.
func (db *DB) ExecPrepared(p *Prepared, args ...Value) (int, error) {
	return p.Exec(args...)
}

// QueryPrepared runs a prepared SELECT; the Session form of Prepared.Query.
func (db *DB) QueryPrepared(p *Prepared, args ...Value) (*Rows, error) {
	return p.Query(args...)
}

// MustExec executes a statement and panics on error. For schema setup in
// tests and examples.
func (db *DB) MustExec(sql string) int {
	n, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return n
}

// Rows is a materialized query result.
type Rows struct {
	Cols []string
	Data [][]Value
	// order records the sort keys (output column positions) the Data slice
	// is known to be ordered by — set when the producing pipeline ran with
	// an explicit or propagated ORDER BY it could satisfy. Scans over a CTE
	// backed by ordered Rows inherit this property, which is how document
	// order flows through the Sorted Outer Union's WITH chain.
	order []sortSpec
	// consts records output column positions holding the same value in
	// every row (NULL-padded outer-union columns, equality-pinned columns).
	// Order satisfaction skips over them.
	consts []int
	// single marks a result known to hold at most one row — materialized
	// CTEs record their actual cardinality, EXPLAIN stubs a prediction —
	// so a join over it cannot disturb stream order.
	single bool
	// orderUnique marks the recorded order tuple as unique per row, which
	// a consumer joining below this result needs before refining its order
	// with deeper keys (equal-key rows would restart the deeper order).
	orderUnique bool
	// est is a predicted row count for results that carry no Data — EXPLAIN
	// stubs stand in for CTE materializations, and the parallel planner
	// sizes its fan-out against est so predicted plans agree with runtime.
	est int
}

// execEnv carries named CTE results, the OLD row binding for trigger
// bodies, the prepared-statement arguments of the enclosing execution, and
// the MVCC snapshot row visibility is evaluated against.
type execEnv struct {
	ctes   map[string]*Rows
	old    []Value
	oldTab *Table
	args   []Value
	parent *execEnv
	// snap is the visibility snapshot (mvcc.go). Plain reads and physical
	// statements use {ts: allTS} (everything committed, which the lock makes
	// consistent); transactional execution narrows it to the transaction's
	// snapshot stamp plus its own in-flight writes.
	snap snapshot
	// an, when non-nil, is the EXPLAIN ANALYZE collection run this
	// execution reports per-operator actuals into (analyze.go). Nil on
	// every ordinary execution: iterator construction checks it once and
	// builds the uninstrumented pipeline.
	an *analyzeRun
}

func newEnv(parent *execEnv) *execEnv {
	e := &execEnv{ctes: make(map[string]*Rows), parent: parent}
	if parent != nil {
		e.snap = parent.snap
		e.an = parent.an
	} else {
		e.snap = snapshot{ts: allTS}
	}
	return e
}

// lookupArgs returns the nearest bound argument vector up the environment
// chain. Trigger bodies inherit their invoker's environment but contain no
// Param nodes, so inheritance is harmless.
func (e *execEnv) lookupArgs() []Value {
	for env := e; env != nil; env = env.parent {
		if env.args != nil {
			return env.args
		}
	}
	return nil
}

func (e *execEnv) lookupCTE(name string) (*Rows, bool) {
	for env := e; env != nil; env = env.parent {
		if r, ok := env.ctes[strings.ToLower(name)]; ok {
			return r, true
		}
	}
	return nil, false
}

func (e *execEnv) oldRow() ([]Value, *Table) {
	for env := e; env != nil; env = env.parent {
		if env.old != nil {
			return env.old, env.oldTab
		}
	}
	return nil, nil
}

// execStmt dispatches a statement under the exclusive lock.
func (db *DB) execStmt(stmt Stmt, env *execEnv) (int, error) {
	if err := db.pagedErr(); err != nil {
		return 0, err
	}
	if env == nil {
		env = newEnv(nil)
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		db.schemaVer++
		return 0, db.createTable(s)
	case *DropTableStmt:
		key := strings.ToLower(s.Name)
		t, ok := db.tables[key]
		if !ok {
			if s.IfExists {
				return 0, nil
			}
			return 0, fmt.Errorf("relational: no table %q", s.Name)
		}
		db.schemaVer++
		delete(db.tables, key)
		if t.pg != nil {
			t.pg.gone.Store(true)
		}
		if db.undo != nil {
			db.undo.recordDDL(func() {
				db.tables[key] = t
				if t.pg != nil {
					t.pg.gone.Store(false)
				}
				db.schemaVer++
			})
		}
		return 0, nil
	case *CreateIndexStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return 0, fmt.Errorf("relational: no table %q", s.Table)
		}
		// New indexes change the preferred join order; bump so plans
		// reorder on next use.
		db.schemaVer++
		if s.Ordered || len(s.Columns) > 1 {
			key := orderedKeyName(s.Columns)
			existed := t.ordered[key] != nil
			err := t.CreateOrderedIndex(s.Columns...)
			if err == nil && !existed && db.undo != nil {
				db.undo.recordDDL(func() {
					delete(t.ordered, key)
					t.refreshOrderedList()
					t.indexEpoch++
					db.schemaVer++
				})
			}
			return 0, err
		}
		key := strings.ToLower(s.Columns[0])
		existed := t.index[key] != nil
		err := t.CreateIndex(s.Columns[0])
		if err == nil && !existed && db.undo != nil {
			db.undo.recordDDL(func() {
				delete(t.index, key)
				t.indexEpoch++
				db.schemaVer++
			})
		}
		return 0, err
	case *CreateTriggerStmt:
		key := strings.ToLower(s.Name)
		if _, dup := db.triggers[key]; dup {
			return 0, fmt.Errorf("relational: trigger %q already exists", s.Name)
		}
		tkey := strings.ToLower(s.Table)
		if _, ok := db.tables[tkey]; !ok {
			return 0, fmt.Errorf("relational: no table %q for trigger %q", s.Table, s.Name)
		}
		tr := &trigger{name: s.Name, table: s.Table, perRow: s.PerRow, body: s.Body}
		db.triggers[key] = tr
		db.byTable[tkey] = append(db.byTable[tkey], tr)
		if db.undo != nil {
			db.undo.recordDDL(func() {
				delete(db.triggers, key)
				db.removeTrigger(tkey, tr)
			})
		}
		return 0, nil
	case *DropTriggerStmt:
		key := strings.ToLower(s.Name)
		tr, ok := db.triggers[key]
		if !ok {
			return 0, fmt.Errorf("relational: no trigger %q", s.Name)
		}
		delete(db.triggers, key)
		tkey := strings.ToLower(tr.table)
		pos := db.removeTrigger(tkey, tr)
		if pos >= 0 && db.undo != nil {
			db.undo.recordDDL(func() {
				db.triggers[key] = tr
				list := db.byTable[tkey]
				if pos > len(list) {
					pos = len(list)
				}
				list = append(list, nil)
				copy(list[pos+1:], list[pos:])
				list[pos] = tr
				db.byTable[tkey] = list
			})
		}
		return 0, nil
	case *InsertStmt:
		return db.execInsert(s, env)
	case *DeleteStmt:
		return db.execDelete(s, env)
	case *UpdateStmt:
		return db.execUpdate(s, env)
	case *SelectStmt:
		rows, err := db.execSelect(s, env)
		if err != nil {
			return 0, err
		}
		return len(rows.Data), nil
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return 0, fmt.Errorf("relational: transaction control not allowed here")
	default:
		return 0, fmt.Errorf("relational: unsupported statement %T", stmt)
	}
}

// removeTrigger unlinks tr from its table's firing list, returning the
// position it held (-1 if absent).
func (db *DB) removeTrigger(tkey string, tr *trigger) int {
	list := db.byTable[tkey]
	for i, x := range list {
		if x == tr {
			db.byTable[tkey] = append(list[:i], list[i+1:]...)
			return i
		}
	}
	return -1
}

func (db *DB) createTable(s *CreateTableStmt) error {
	key := strings.ToLower(s.Name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("relational: table %q already exists", s.Name)
	}
	schema, err := NewSchema(s.Cols)
	if err != nil {
		return err
	}
	t := NewTable(s.Name, schema)
	// The back-pointer routes the table's mutations into the DB's active
	// undo log (txn.go); tables created outside a DB stay untracked.
	t.db = db
	// Key/parent-ID columns are what Shared Inlining always joins on; index
	// them from the start so generated joins probe instead of scan. Temp
	// work areas (table-based insert, §6.2.2) are written once, offset, and
	// drained — index maintenance there is pure overhead.
	if !s.Temp {
		t.autoIndex()
	}
	// Temp work areas also skip interning (see Table.noIntern).
	t.noIntern = s.Temp
	if db.pool != nil && !s.Temp {
		// Paged backend: persistent tables page their rows; temp work
		// areas stay heap-resident (written once and drained, they would
		// only churn the pool). Paged tables also skip interning —
		// eviction is what actually frees a cold page's string memory,
		// and an intern table pinning every distinct string would defeat
		// it. Lazy symKey lookups keep equality semantics identical.
		t.pg = newPagedTable(db, t)
		t.noIntern = true
	}
	db.tables[key] = t
	if db.undo != nil {
		// Rollback drops the table again — in particular the CREATE TEMP
		// TABLE work areas of a failed table-method insert, which would
		// otherwise linger and block the retry.
		db.undo.recordDDL(func() {
			delete(db.tables, key)
			if t.pg != nil {
				t.pg.gone.Store(true)
			}
			db.schemaVer++
		})
	}
	return nil
}

// fireDeleteTriggers fires the table's triggers after a delete: per-row
// triggers once per deleted row (with OLD bound), then per-statement
// triggers once. Per-statement triggers fire only when rows were actually
// deleted, which both matches the cascading semantics the paper builds on
// them and guarantees termination on recursive schemas.
func (db *DB) fireDeleteTriggers(t *Table, deletedRows [][]Value, env *execEnv) error {
	trs := db.byTable[strings.ToLower(t.Name)]
	if len(trs) == 0 || len(deletedRows) == 0 {
		return nil
	}
	for _, tr := range trs {
		if tr.perRow {
			for _, old := range deletedRows {
				db.stats.TriggerFirings.Add(1)
				tenv := newEnv(env)
				tenv.old = old
				tenv.oldTab = t
				if _, err := db.execStmt(tr.body, tenv); err != nil {
					return fmt.Errorf("relational: trigger %s: %w", tr.name, err)
				}
			}
		} else {
			db.stats.TriggerFirings.Add(1)
			tenv := newEnv(env)
			if _, err := db.execStmt(tr.body, tenv); err != nil {
				return fmt.Errorf("relational: trigger %s: %w", tr.name, err)
			}
		}
	}
	return nil
}

package relational

import (
	"fmt"
	"strings"
)

// ParseSQL parses a single SQL statement of the supported subset.
func ParseSQL(src string) (Stmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	stmt, _, err := parseTokens(toks, src)
	return stmt, err
}

// parseTokens parses a token stream, returning the statement and the number
// of `?` parameters it contains.
func parseTokens(toks []token, src string) (Stmt, int, error) {
	p := &sqlParser{toks: toks, src: src}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, 0, fmt.Errorf("relational: parse: %s in %q", err, abbreviate(src))
	}
	// Optional trailing semicolon.
	if p.peekSym(";") {
		p.i++
	}
	if p.cur().kind != tokEOF {
		return nil, 0, fmt.Errorf("relational: parse: trailing input %q in %q", p.cur().text, abbreviate(src))
	}
	return stmt, p.nparams, nil
}

func abbreviate(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 120 {
		return s[:120] + "…"
	}
	return s
}

type sqlParser struct {
	toks    []token
	i       int
	src     string
	nparams int
}

func (p *sqlParser) cur() token { return p.toks[p.i] }

func (p *sqlParser) peekKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *sqlParser) kw(kw string) bool {
	if p.peekKw(kw) {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.kw(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *sqlParser) peekSym(s string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == s
}

func (p *sqlParser) sym(s string) bool {
	if p.peekSym(s) {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectSym(s string) error {
	if !p.sym(s) {
		return fmt.Errorf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *sqlParser) parseStmt() (Stmt, error) {
	switch {
	case p.peekKw("CREATE"):
		return p.parseCreate()
	case p.peekKw("DROP"):
		return p.parseDrop()
	case p.peekKw("INSERT"):
		return p.parseInsert()
	case p.peekKw("DELETE"):
		return p.parseDelete()
	case p.peekKw("UPDATE"):
		return p.parseUpdate()
	case p.peekKw("SELECT"), p.peekKw("WITH"), p.peekSym("("):
		return p.parseSelect()
	case p.kw("BEGIN"):
		p.txnNoise()
		return &BeginStmt{}, nil
	case p.kw("COMMIT"):
		p.txnNoise()
		return &CommitStmt{}, nil
	case p.kw("ROLLBACK"):
		p.txnNoise()
		return &RollbackStmt{}, nil
	default:
		return nil, fmt.Errorf("unexpected statement start %q", p.cur().text)
	}
}

// txnNoise consumes the optional TRANSACTION/WORK keyword after a
// transaction-control verb.
func (p *sqlParser) txnNoise() {
	if p.kw("TRANSACTION") || p.kw("WORK") {
		return
	}
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	p.kw("CREATE")
	switch {
	case p.peekKw("TEMP") || p.peekKw("TEMPORARY"):
		p.i++
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		return p.parseCreateTableBody(true)
	case p.kw("TABLE"):
		return p.parseCreateTableBody(false)
	case p.peekKw("ORDERED"), p.peekKw("INDEX"):
		ordered := p.kw("ORDERED")
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			if p.sym(",") {
				continue
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			break
		}
		return &CreateIndexStmt{Name: name, Table: table, Columns: cols, Ordered: ordered}, nil
	case p.kw("TRIGGER"):
		return p.parseCreateTrigger()
	default:
		return nil, fmt.Errorf("expected TABLE, INDEX or TRIGGER after CREATE")
	}
}

func (p *sqlParser) parseCreateTableBody(temp bool) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: cname, Type: typ})
		if p.sym(",") {
			continue
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Cols: cols, Temp: temp}, nil
	}
}

func (p *sqlParser) parseType() (Type, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return 0, fmt.Errorf("expected column type, got %q", t.text)
	}
	p.i++
	switch strings.ToUpper(t.text) {
	case "INTEGER", "INT", "BIGINT":
		return Integer, nil
	case "VARCHAR", "CHAR", "TEXT":
		// Optional length: VARCHAR(50).
		if p.sym("(") {
			if p.cur().kind != tokNumber {
				return 0, fmt.Errorf("expected length in %s(…)", t.text)
			}
			p.i++
			if err := p.expectSym(")"); err != nil {
				return 0, err
			}
		}
		return Varchar, nil
	default:
		return 0, fmt.Errorf("unsupported column type %q", t.text)
	}
}

func (p *sqlParser) parseCreateTrigger() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AFTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FOR"); err != nil {
		return nil, err
	}
	if err := p.expectKw("EACH"); err != nil {
		return nil, err
	}
	perRow := false
	switch {
	case p.kw("ROW"):
		perRow = true
	case p.kw("STATEMENT"):
	default:
		return nil, fmt.Errorf("expected ROW or STATEMENT, got %q", p.cur().text)
	}
	var body Stmt
	switch {
	case p.peekKw("DELETE"):
		body, err = p.parseDelete()
	case p.peekKw("UPDATE"):
		body, err = p.parseUpdate()
	default:
		return nil, fmt.Errorf("trigger body must be DELETE or UPDATE")
	}
	if err != nil {
		return nil, err
	}
	return &CreateTriggerStmt{Name: name, Table: table, PerRow: perRow, Body: body}, nil
}

func (p *sqlParser) parseDrop() (Stmt, error) {
	p.kw("DROP")
	switch {
	case p.kw("TABLE"):
		ifExists := false
		if p.kw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name, IfExists: ifExists}, nil
	case p.kw("TRIGGER"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTriggerStmt{Name: name}, nil
	default:
		return nil, fmt.Errorf("expected TABLE or TRIGGER after DROP")
	}
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	p.kw("INSERT")
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.sym("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if p.sym(",") {
				continue
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.kw("VALUES") {
		for {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.sym(",") {
					continue
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				break
			}
			stmt.Rows = append(stmt.Rows, row)
			if p.sym(",") {
				continue
			}
			return stmt, nil
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Select = sel.(*SelectStmt)
	return stmt, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	p.kw("DELETE")
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.kw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	p.kw("UPDATE")
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Col: col, Val: val})
		if p.sym(",") {
			continue
		}
		break
	}
	if p.kw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// parseSelect parses [WITH …] unionBody [ORDER BY …].
func (p *sqlParser) parseSelect() (Stmt, error) {
	stmt := &SelectStmt{}
	if p.kw("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			cte := CTE{Name: name}
			if p.sym("(") {
				for {
					col, err := p.ident()
					if err != nil {
						return nil, err
					}
					cte.Cols = append(cte.Cols, col)
					if p.sym(",") {
						continue
					}
					if err := p.expectSym(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			inner, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			cte.Select = inner.(*SelectStmt)
			stmt.With = append(stmt.With, cte)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	body, err := p.parseUnionBody()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.kw("DESC") {
				key.Desc = true
			} else {
				p.kw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	return stmt, nil
}

// parseUnionBody parses simpleSelect (UNION ALL simpleSelect)*, where each
// branch may be parenthesized.
func (p *sqlParser) parseUnionBody() ([]*SimpleSelect, error) {
	var out []*SimpleSelect
	for {
		var s *SimpleSelect
		if p.sym("(") {
			inner, err := p.parseUnionBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			// A parenthesized branch of more than one member is flattened;
			// UNION ALL is associative.
			out = append(out, inner...)
			if p.kw("UNION") {
				if err := p.expectKw("ALL"); err != nil {
					return nil, fmt.Errorf("only UNION ALL is supported")
				}
				continue
			}
			return out, nil
		}
		var err error
		s, err = p.parseSimpleSelect()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.kw("UNION") {
			if err := p.expectKw("ALL"); err != nil {
				return nil, fmt.Errorf("only UNION ALL is supported")
			}
			continue
		}
		return out, nil
	}
}

func (p *sqlParser) parseSimpleSelect() (*SimpleSelect, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SimpleSelect{}
	if p.kw("DISTINCT") {
		s.Distinct = true
	}
	if p.peekSym("*") && !p.isStarExprAhead() {
		p.i++
		s.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.kw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.cur().kind == tokIdent && !p.peekKw("FROM") && !p.peekKw("WHERE") &&
				!p.peekKw("UNION") && !p.peekKw("ORDER") {
				alias, _ := p.ident()
				se.Alias = alias
			}
			s.Exprs = append(s.Exprs, se)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	if p.kw("FROM") {
		for {
			tname, err := p.ident()
			if err != nil {
				return nil, err
			}
			item := FromItem{Table: tname}
			if p.kw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().kind == tokIdent && !p.peekKw("WHERE") && !p.peekKw("UNION") &&
				!p.peekKw("ORDER") {
				alias, _ := p.ident()
				item.Alias = alias
			}
			s.From = append(s.From, item)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	if p.kw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	return s, nil
}

// isStarExprAhead distinguishes `SELECT *` from an arithmetic expression
// starting with `*` (which cannot occur) — always false; kept for clarity.
func (p *sqlParser) isStarExprAhead() bool { return false }

// Expression grammar: or → and → not → comparison → additive →
// multiplicative → primary.
func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.kw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.kw("IS") {
		neg := p.kw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	// [NOT] IN (…) and [NOT] BETWEEN lo AND hi
	neg := false
	if p.peekKw("NOT") {
		save := p.i
		p.i++
		if !p.peekKw("IN") && !p.peekKw("BETWEEN") {
			p.i = save
		} else {
			neg = true
		}
	}
	if p.kw("BETWEEN") {
		// Desugared to (l >= lo AND l <= hi), so the planner sees two plain
		// range conjuncts and can turn them into B+tree bounds.
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		rng := &Binary{
			Op: "AND",
			L:  &Binary{Op: ">=", L: l, R: lo},
			R:  &Binary{Op: "<=", L: l, R: hi},
		}
		if neg {
			return &Unary{Op: "NOT", X: rng}, nil
		}
		return rng, nil
	}
	if p.kw("IN") {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		in := &InExpr{X: l, Negate: neg}
		if p.peekKw("SELECT") || p.peekKw("WITH") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Select = sel.(*SelectStmt)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if p.sym(",") {
					continue
				}
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	for _, op := range []string{"<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.peekSym(op) {
			p.i++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canon := op
			if canon == "<>" {
				canon = "!="
			}
			return &Binary{Op: canon, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekSym("+"):
			p.i++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.peekSym("-"):
			p.i++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekSym("*"):
			p.i++
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.peekSym("/"):
			p.i++
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		return &Literal{Value: Int(t.num)}, nil
	case t.kind == tokString:
		p.i++
		return &Literal{Value: Text(t.text)}, nil
	case t.kind == tokParam:
		p.i++
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case p.peekSym("-"):
		p.i++
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case p.peekSym("("):
		p.i++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.i++
			return &Literal{Value: Null}, nil
		}
		upper := strings.ToUpper(t.text)
		if upper == "MIN" || upper == "MAX" || upper == "COUNT" {
			// Aggregate call — only when followed by '('.
			if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
				p.i += 2
				fc := &FuncCall{Name: upper}
				if p.sym("*") {
					fc.Star = true
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Arg = arg
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
		}
		p.i++
		name := t.text
		if p.sym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("unexpected token %q in expression", t.text)
	}
}

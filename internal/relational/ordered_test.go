package relational

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Ordered-vs-unordered equivalence: every ORDER BY / range query must return
// the identical row sequence with ordered indexes (range scans, ordered
// probes, sort elision, merge) and without them (full scans plus the
// blocking sortIter). Randomized parent/child documents cover duplicate
// keys, NULLs, DESC, and multi-key orderings.

// buildRandomDoc loads a two-table parent/child "document" with randomized
// positions and values. Child ids are unique but inserted out of id order,
// so elided and sorted paths only agree if tie-breaking matches exactly.
func buildRandomDoc(t testing.TB, seed int64, ordered bool) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE Par (id INTEGER, parentId INTEGER, name VARCHAR(20))`)
	db.MustExec(`CREATE TABLE Kid (id INTEGER, parentId INTEGER, pos INTEGER, val VARCHAR(20))`)
	if ordered {
		db.MustExec(`CREATE ORDERED INDEX op_id ON Par (id)`)
		db.MustExec(`CREATE ORDERED INDEX ok_id ON Kid (id)`)
		db.MustExec(`CREATE ORDERED INDEX ok_pid ON Kid (parentId, id)`)
		db.MustExec(`CREATE ORDERED INDEX ok_pos ON Kid (parentId, pos)`)
	}
	rng := rand.New(rand.NewSource(seed))
	nPar := 8 + rng.Intn(8)
	kidID := 1000
	for p := 1; p <= nPar; p++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Par VALUES (%d, NULL, 'p%d')`, p, p))
	}
	// Children inserted in shuffled order with occasional NULL values and
	// duplicate positions.
	type kid struct{ id, parent, pos int }
	var kids []kid
	for p := 1; p <= nPar; p++ {
		n := rng.Intn(7)
		for i := 0; i < n; i++ {
			kids = append(kids, kid{kidID, p, rng.Intn(5)})
			kidID++
		}
	}
	rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
	for _, k := range kids {
		val := fmt.Sprintf("'v%d'", rng.Intn(4))
		if rng.Intn(6) == 0 {
			val = "NULL"
		}
		db.MustExec(fmt.Sprintf(`INSERT INTO Kid VALUES (%d, %d, %d, %s)`, k.id, k.parent, k.pos, val))
	}
	// Random updates and deletes exercise incremental index maintenance.
	for i := 0; i < 10; i++ {
		id := 1000 + rng.Intn(kidID-1000)
		switch rng.Intn(3) {
		case 0:
			db.MustExec(fmt.Sprintf(`DELETE FROM Kid WHERE id = %d`, id))
		case 1:
			db.MustExec(fmt.Sprintf(`UPDATE Kid SET pos = %d WHERE id = %d`, rng.Intn(5), id))
		default:
			db.MustExec(fmt.Sprintf(`UPDATE Kid SET val = 'u%d' WHERE id = %d`, rng.Intn(3), id))
		}
	}
	return db
}

func rowsString(r *Rows) string {
	var b strings.Builder
	for _, row := range r.Data {
		for _, v := range row {
			b.WriteString(FormatValue(v))
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// equivalenceQueries are the ORDER BY and range shapes the paper's workloads
// generate: document-order streams, position windows, DESC keys, multi-key
// orderings, and BETWEEN. keys lists each ORDER BY key as an output column
// position (negative = descending on position ~k-1): SQL guarantees the key
// sequence and the row multiset, not the order within key ties — tie order
// legitimately differs between a B+tree walk (rowid order) and a probe of a
// swap-compacted hash bucket, with or without ordered indexes.
var equivalenceQueries = []struct {
	sql  string
	keys []int // 1-based output position, negative for DESC
}{
	{`SELECT id, parentId, pos FROM Kid ORDER BY id`, []int{1}},
	{`SELECT id, parentId, pos FROM Kid ORDER BY id DESC`, []int{-1}},
	{`SELECT parentId, id, pos, val FROM Kid ORDER BY parentId, id`, []int{1, 2}},
	{`SELECT parentId, pos, id FROM Kid ORDER BY parentId DESC, pos DESC`, []int{-1, -2}},
	{`SELECT pos, id FROM Kid WHERE parentId = 3 AND pos >= 2 ORDER BY pos`, []int{1}},
	{`SELECT id, pos FROM Kid WHERE parentId = 5 AND pos BETWEEN 1 AND 3 ORDER BY pos, id`, []int{2, 1}},
	{`SELECT id FROM Kid WHERE id > 1004 AND id <= 1030 ORDER BY id`, []int{1}},
	{`SELECT val, id FROM Kid ORDER BY val, id`, []int{1, 2}},
	{`SELECT P.id, K.id FROM Par P, Kid K WHERE K.parentId = P.id ORDER BY 1, 2`, []int{1, 2}},
	{`SELECT P.id, K.pos, K.id FROM Par P, Kid K WHERE K.parentId = P.id AND K.pos < 3 ORDER BY 1, 3`, []int{1, 3}},
	{`SELECT id FROM Kid WHERE pos >= 1 AND pos < 4`, nil},
	{`SELECT DISTINCT parentId FROM Kid ORDER BY parentId`, []int{1}},
}

// assertKeyOrder fails if consecutive rows violate the key sequence.
func assertKeyOrder(t *testing.T, label, sql string, rows *Rows, keys []int) {
	t.Helper()
	specs := make([]sortSpec, len(keys))
	for i, k := range keys {
		if k < 0 {
			specs[i] = sortSpec{col: -k - 1, desc: true}
		} else {
			specs[i] = sortSpec{col: k - 1}
		}
	}
	for i := 1; i < len(rows.Data); i++ {
		if compareRows(rows.Data[i-1], rows.Data[i], specs) > 0 {
			t.Errorf("%s: %q: rows %d/%d out of order: %v then %v", label, sql, i-1, i, rows.Data[i-1], rows.Data[i])
			return
		}
	}
}

func TestOrderedUnorderedEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 5, 11, 23} {
		withIdx := buildRandomDoc(t, seed, true)
		without := buildRandomDoc(t, seed, false)
		for _, q := range equivalenceQueries {
			a, err := withIdx.Query(q.sql)
			if err != nil {
				t.Fatalf("seed %d ordered: %q: %v", seed, q.sql, err)
			}
			b, err := without.Query(q.sql)
			if err != nil {
				t.Fatalf("seed %d plain: %q: %v", seed, q.sql, err)
			}
			// Same multiset of rows…
			al := strings.Split(rowsString(a), "\n")
			bl := strings.Split(rowsString(b), "\n")
			sort.Strings(al)
			sort.Strings(bl)
			if strings.Join(al, "\n") != strings.Join(bl, "\n") {
				t.Errorf("seed %d: %q row multisets diverge\nordered:\n%s\nplain:\n%s",
					seed, q.sql, rowsString(a), rowsString(b))
				continue
			}
			// …and both sequences honour the ORDER BY keys.
			assertKeyOrder(t, fmt.Sprintf("seed %d ordered", seed), q.sql, a, q.keys)
			assertKeyOrder(t, fmt.Sprintf("seed %d plain", seed), q.sql, b, q.keys)
		}
	}
}

// TestDropIndexAblation checks the ablation path directly: after DropIndex,
// the same statements plan as scans plus a sort, still returning the same
// sequence the elided pipeline produced.
func TestDropIndexAblation(t *testing.T) {
	db := buildRandomDoc(t, 7, true)
	q := `SELECT id, pos FROM Kid WHERE parentId = 4 AND pos >= 1 ORDER BY pos, id`
	before, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.RangeProbes == 0 {
		t.Errorf("expected a range probe before ablation, stats %+v", st)
	}
	kid := db.Table("Kid")
	if !kid.DropIndex("parentId") {
		t.Fatal("DropIndex(parentId) dropped nothing")
	}
	if got := len(kid.OrderedIndexes()); got != 1 {
		t.Fatalf("ordered indexes after drop = %d, want 1 (id)", got)
	}
	db.ResetStats()
	after, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rowsString(before) != rowsString(after) {
		t.Errorf("ablated run diverges:\n%s\nvs\n%s", rowsString(before), rowsString(after))
	}
	st = db.Stats()
	if st.SortPasses == 0 {
		t.Errorf("ablated run should sort, stats %+v", st)
	}
}

// TestDuplicateOuterKeyNoElision: when the outer ORDER BY column has
// duplicate values, equal-key outer rows each restart the inner order, so
// the join stream does NOT satisfy (x, y) and the sort must run. (Only a
// unique outer key — like the document ids the Sorted Outer Union sorts
// on — lets deeper keys continue the order.)
func TestDuplicateOuterKeyNoElision(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE a (rowkey INTEGER, x INTEGER)`)
	db.MustExec(`CREATE TABLE b (parentId INTEGER, y INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX oax ON a (x)`)
	db.MustExec(`CREATE ORDERED INDEX oby ON b (parentId, y)`)
	db.MustExec(`INSERT INTO a VALUES (1, 5), (2, 5)`)
	db.MustExec(`INSERT INTO b VALUES (1, 3), (1, 7), (2, 1), (2, 9)`)
	rows, err := db.Query(`SELECT a.x, b.y FROM a, b WHERE b.parentId = a.rowkey ORDER BY x, y`)
	if err != nil {
		t.Fatal(err)
	}
	want := "5,1;5,3;5,7;5,9;"
	var got strings.Builder
	for _, r := range rows.Data {
		fmt.Fprintf(&got, "%v,%v;", r[0], r[1])
	}
	if got.String() != want {
		t.Errorf("duplicate-outer-key join misordered: got %s want %s", got.String(), want)
	}
	if st := db.Stats(); st.SortPasses == 0 {
		t.Errorf("sort should NOT be elided over a non-unique outer key, stats %+v", st)
	}
}

// TestCTEPartialOrderNoUniquePin: a CTE materialized by an ordered scan of
// (parentId, id) under ORDER BY parentId records only [parentId] — a
// non-unique prefix. The trailing unique id ordered rows *within* duplicate
// parentId groups; it must not mark the recorded order unique, or a
// consumer joining over the CTE would keep satisfying deeper keys and elide
// a required sort.
func TestCTEPartialOrderNoUniquePin(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, parentId INTEGER)`)
	db.MustExec(`CREATE TABLE u (k INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX otp ON t (parentId, id)`)
	db.MustExec(`CREATE ORDERED INDEX ouk ON u (k)`)
	db.MustExec(`INSERT INTO t VALUES (10, 1), (11, 1)`)
	db.MustExec(`INSERT INTO u VALUES (1), (2)`)
	rows, err := db.Query(`WITH c AS (SELECT parentId, id FROM t ORDER BY parentId) ` +
		`SELECT c.parentId, c.id, u.k FROM c, u ORDER BY 1, 3`)
	if err != nil {
		t.Fatal(err)
	}
	var ks []string
	for _, r := range rows.Data {
		ks = append(ks, FormatValue(r[2]))
	}
	if got := strings.Join(ks, ","); got != "1,1,2,2" {
		t.Errorf("ORDER BY parentId, k violated: k sequence %s, want 1,1,2,2", got)
	}
	if st := db.Stats(); st.SortPasses == 0 {
		t.Errorf("sort must run over a CTE whose recorded order is a non-unique prefix, stats %+v", st)
	}
}

// TestCTEFullUniqueOrderStillElides guards the flip side: when the CTE's
// recorded order ends in the unique id and the consumer consumes it in
// full, the pin holds and no sort runs anywhere in the chain.
func TestCTEFullUniqueOrderStillElides(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, parentId INTEGER)`)
	db.MustExec(`CREATE TABLE u (k INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX otp ON t (parentId, id)`)
	db.MustExec(`CREATE ORDERED INDEX ouk ON u (k)`)
	db.MustExec(`INSERT INTO t VALUES (11, 1), (10, 1)`)
	db.MustExec(`INSERT INTO u VALUES (2), (1)`)
	rows, err := db.Query(`WITH c AS (SELECT parentId, id FROM t ORDER BY parentId, id) ` +
		`SELECT c.parentId, c.id, u.k FROM c, u ORDER BY 1, 2, 3`)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, r := range rows.Data {
		fmt.Fprintf(&got, "%v,%v,%v;", r[0], r[1], r[2])
	}
	if want := "1,10,1;1,10,2;1,11,1;1,11,2;"; got.String() != want {
		t.Errorf("elided join misordered: got %s want %s", got.String(), want)
	}
	if st := db.Stats(); st.SortPasses != 0 {
		t.Errorf("fully consumed unique order should elide every sort, stats %+v", st)
	}
}

// TestMatchRowsRangePathAscendingRowids pins matchRows' contract for DML:
// rowids come back ascending regardless of access path, so UPDATE/DELETE
// application and trigger firing order do not vary when a B+tree window
// replaces the hash probe. Rows are inserted with descending pos, making
// index-key order the reverse of rowid order.
func TestMatchRowsRangePathAscendingRowids(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE T (id INTEGER, pos INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX opos ON T (pos)`)
	for i := 0; i < 8; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d, %d)`, i+1, 80-10*i))
	}
	stmt, err := ParseSQL(`DELETE FROM T WHERE pos >= 15`)
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	rids, err := db.matchRows(&del.plan, db.Table("T"), "T", del.Where, newEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().RangeProbes == 0 {
		t.Fatalf("expected the B+tree range path, stats %+v", db.Stats())
	}
	if !sort.IntsAreSorted(rids) {
		t.Errorf("matchRows returned unsorted rowids %v", rids)
	}
	if len(rids) != 7 {
		t.Errorf("matchRows matched %d rows, want 7", len(rids))
	}
}

// TestUniqueEnforcedAfterDropIndex: DropIndex("id") is supported for
// ablation, but order planning keeps treating id as unique (single-row
// pins, sort elision), so the duplicate check must survive the drop —
// first on the ordered index, then with neither index via heap scan.
func TestUniqueEnforcedAfterDropIndex(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE T (id INTEGER, parentId INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX oid ON T (id)`)
	db.MustExec(`INSERT INTO T VALUES (1, NULL), (2, 1)`)
	tab := db.Table("T")
	if !tab.DropIndex("id") {
		t.Fatal("DropIndex(id) dropped the hash index only; ordered (id) should go too")
	}
	// The ordered (id) index was dropped alongside the hash index, so this
	// exercises the heap-scan fallback.
	if _, err := db.Exec(`INSERT INTO T VALUES (2, 1)`); err == nil {
		t.Error("duplicate id insert succeeded after DropIndex(id)")
	}
	if _, err := db.Exec(`UPDATE T SET id = 1 WHERE id = 2`); err == nil {
		t.Error("duplicate id update succeeded after DropIndex(id)")
	}
	// Ordered-index fallback: a fresh ordered index, still no hash index.
	db.MustExec(`CREATE ORDERED INDEX oid2 ON T (id)`)
	if _, err := db.Exec(`INSERT INTO T VALUES (2, 1)`); err == nil {
		t.Error("duplicate id insert succeeded with ordered-index-only enforcement")
	}
	if _, err := db.Exec(`INSERT INTO T VALUES (3, 1)`); err != nil {
		t.Errorf("fresh id rejected: %v", err)
	}
}

// TestCTEInnerLevelHashJoin: a CTE at an inner join level with a correlated
// equality and no useful recorded order must use the transient hash join
// (one build, bucket probes), not replay the materialized rows once per
// outer row — the PR 1 path, which the order-aware refactor briefly lost.
func TestCTEInnerLevelHashJoin(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, parentId INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1, NULL), (2, 1), (3, 1)`)
	q := `WITH c AS (SELECT id, parentId FROM t) SELECT a.id, c.id FROM t a, c WHERE c.parentId = a.id`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin c") {
		t.Errorf("CTE inner level should hash-join, plan:\n%s", plan)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.HashJoinBuilds == 0 {
		t.Errorf("expected a transient hash build, stats %+v", st)
	}
}

// TestCTEPartialOrderContinuationHashJoins: when a CTE's recorded order
// matches only part of the wanted keys at its level (here [parentId, id]
// against wanted [parentId, pos]), elision dies in the satisfaction walk —
// so the planner must not keep the per-outer-row replay scan for its
// order, or the query pays both the replay and the sort. The correlated
// equality takes the transient hash join instead.
func TestCTEPartialOrderContinuationHashJoins(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE o (id INTEGER)`)
	db.MustExec(`CREATE TABLE t (id INTEGER, parentId INTEGER, pos INTEGER)`)
	db.MustExec(`CREATE ORDERED INDEX ooid ON o (id)`)
	db.MustExec(`INSERT INTO o VALUES (1), (2)`)
	db.MustExec(`INSERT INTO t VALUES (10, 1, 5), (11, 1, 4), (12, 2, 3)`)
	q := `WITH c AS (SELECT id, parentId, pos FROM t ORDER BY parentId, id) ` +
		`SELECT o.id, c.parentId, c.pos FROM o, c WHERE c.parentId = o.id ORDER BY 1, 2, 3`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin c") {
		t.Errorf("partially continuing CTE order should hash-join, plan:\n%s", plan)
	}
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, r := range rows.Data {
		fmt.Fprintf(&got, "%v,%v,%v;", r[0], r[1], r[2])
	}
	if want := "1,1,4;1,1,5;2,2,3;"; got.String() != want {
		t.Errorf("join misordered: got %s want %s", got.String(), want)
	}
	if st := db.Stats(); st.SortPasses == 0 || st.HashJoinBuilds == 0 {
		t.Errorf("expected a sort and a hash build, stats %+v", st)
	}
}

// TestBTreeRandomOps drives the B+tree against a reference map through
// random inserts, removals, and range scans.
func TestBTreeRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tree := newBTree()
	ref := make(map[int]int64) // rid -> key value
	rid := 0
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) > 0 || len(ref) == 0 {
			v := int64(rng.Intn(200))
			tree.insert(bkey{vals: [btreeMaxCols]Value{Int(v)}, rid: rid})
			ref[rid] = v
			rid++
		} else {
			// Remove a random live entry.
			for r, v := range ref {
				if !tree.remove(bkey{vals: [btreeMaxCols]Value{Int(v)}, rid: r}) {
					t.Fatalf("step %d: remove (%d,%d) failed", step, v, r)
				}
				delete(ref, r)
				break
			}
		}
	}
	// Full ascending walk must match the sorted reference.
	type ent struct {
		v   int64
		rid int
	}
	var want []ent
	for r, v := range ref {
		want = append(want, ent{v, r})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].v != want[j].v {
			return want[i].v < want[j].v
		}
		return want[i].rid < want[j].rid
	})
	i := 0
	for c := tree.min(); ; c.advance() {
		k, ok := c.entry()
		if !ok {
			break
		}
		if i >= len(want) || k.vals[0].MustInt() != want[i].v || k.rid != want[i].rid {
			t.Fatalf("walk[%d] = (%v,%d), want (%d,%d)", i, k.vals[0], k.rid, want[i].v, want[i].rid)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("walk visited %d entries, want %d", i, len(want))
	}
	if tree.size != len(want) {
		t.Fatalf("tree.size = %d, want %d", tree.size, len(want))
	}
	// Descending walk reverses it.
	i = len(want)
	for c := tree.max(); ; c.advance() {
		k, ok := c.entry()
		if !ok {
			break
		}
		i--
		if k.rid != want[i].rid {
			t.Fatalf("desc walk mismatch at %d", i)
		}
	}
	if i != 0 {
		t.Fatalf("desc walk stopped at %d", i)
	}
}

// BenchmarkSOUReconstructionOrdered measures a document-scale Sorted Outer
// Union stream with ordered indexes (merged branches, no sort) against the
// ablated hash-probe-plus-sort pipeline.
func BenchmarkSOUReconstruction(b *testing.B) {
	setup := func(b *testing.B, ordered bool) (*DB, string) {
		db := NewDB()
		db.MustExec(`CREATE TABLE P (id INTEGER, parentId INTEGER, name VARCHAR(20))`)
		db.MustExec(`CREATE TABLE C (id INTEGER, parentId INTEGER, d VARCHAR(20))`)
		if ordered {
			// The shred-declared shape: (id) B+tree for the base branch;
			// child branches sort parentId hash buckets (SortedProbe).
			db.MustExec(`CREATE ORDERED INDEX op ON P (id)`)
		}
		id := 1
		for i := 0; i < 500; i++ {
			pid := id
			id++
			db.MustExec(fmt.Sprintf(`INSERT INTO P VALUES (%d, NULL, 'p')`, pid))
			for j := 0; j < 8; j++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO C VALUES (%d, %d, 'c')`, id, pid))
				id++
			}
		}
		sql := `WITH Q1(C1, C2, C3, C4) AS (SELECT T.id, T.name, NULL, NULL FROM P T), ` +
			`Q2(C1, C2, C3, C4) AS (SELECT Q1.C1, NULL, T.id, T.d FROM Q1, C T WHERE T.parentId = Q1.C1) ` +
			`(SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2) ORDER BY C1, C3`
		return db, sql
	}
	for _, ordered := range []bool{true, false} {
		b.Run(fmt.Sprintf("ordered=%v", ordered), func(b *testing.B) {
			db, sql := setup(b, ordered)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package relational

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestTraceHookPhases: a registered hook sees one span per statement with
// the right kind, cache-hit flag, row count, and stats delta; with no hook
// registered nothing fires.
func TestTraceHookPhases(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER, name VARCHAR(20))`)

	var got []*QueryTrace
	cancel := db.OnTrace(func(qt *QueryTrace) { got = append(got, qt) })

	db.MustExec(`INSERT INTO item VALUES (1, 'a')`)
	db.MustExec(`INSERT INTO item VALUES (2, 'b')`)
	if _, err := db.Query(`SELECT id FROM item`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryEach(`SELECT id FROM item`, func([]Value) error { return nil }); err != nil {
		t.Fatal(err)
	}

	if len(got) != 4 {
		t.Fatalf("%d traces, want 4", len(got))
	}
	ins1, ins2, q, qe := got[0], got[1], got[2], got[3]
	if ins1.Kind != "exec" || ins1.Rows != 1 || ins1.CacheHit {
		t.Errorf("first insert: kind=%q rows=%d hit=%v, want exec/1/false", ins1.Kind, ins1.Rows, ins1.CacheHit)
	}
	if !ins2.CacheHit {
		t.Error("second insert missed the shape cache")
	}
	if ins1.Stats.RowsInserted != 1 {
		t.Errorf("insert stats delta RowsInserted=%d, want 1", ins1.Stats.RowsInserted)
	}
	if q.Kind != "query" || q.Rows != 2 {
		t.Errorf("query: kind=%q rows=%d, want query/2", q.Kind, q.Rows)
	}
	if q.Stats.RowsScanned != 2 {
		t.Errorf("query stats delta RowsScanned=%d, want 2", q.Stats.RowsScanned)
	}
	if qe.Kind != "query-each" || qe.Rows != 2 {
		t.Errorf("query-each: kind=%q rows=%d, want query-each/2", qe.Kind, qe.Rows)
	}
	for _, qt := range got {
		if qt.Total <= 0 {
			t.Errorf("%s: non-positive Total %v", qt.Kind, qt.Total)
		}
		if qt.Err != "" {
			t.Errorf("%s: unexpected error %q", qt.Kind, qt.Err)
		}
	}

	// After cancel, nothing fires and the atomic gate is fully off again.
	cancel()
	if db.obs.Load() != nil {
		t.Error("observability state not nil after last hook cancelled")
	}
	db.MustExec(`INSERT INTO item VALUES (3, 'c')`)
	if len(got) != 4 {
		t.Errorf("hook fired after cancel: %d traces", len(got))
	}
}

// TestTracePreparedAndTx: prepared executions and SQL-transaction paths
// carry their own span kinds.
func TestTracePreparedAndTx(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	var kinds []string
	defer db.OnTrace(func(qt *QueryTrace) { kinds = append(kinds, qt.Kind) })()

	p, err := db.Prepare(`INSERT INTO item VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(Int(1)); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`BEGIN`)
	db.MustExec(`INSERT INTO item VALUES (2)`)
	db.MustExec(`COMMIT`)

	want := []string{"prepared-exec", "exec", "tx-exec", "tx-commit"} // BEGIN is a plain exec
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("span kinds = %v, want %v", kinds, want)
	}
}

// TestTraceRing: the ring keeps the last n traces, oldest first.
func TestTraceRing(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	db.EnableTraceLog(3)
	for i := 0; i < 5; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO item VALUES (%d)`, i))
	}
	log := db.TraceLog()
	if len(log) != 3 {
		t.Fatalf("%d entries, want 3", len(log))
	}
	for i, qt := range log {
		want := fmt.Sprintf("(%d)", 2+i)
		if !strings.Contains(qt.SQL, want) {
			t.Errorf("entry %d = %q, want suffix %s (oldest-first ordering)", i, qt.SQL, want)
		}
	}
	db.EnableTraceLog(0)
	if db.TraceLog() != nil {
		t.Error("trace log still readable after disable")
	}
}

// TestSlowQueryThreshold: with a threshold set, only statements crossing it
// enter the log, marked Slow.
func TestSlowQueryThreshold(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER)`)

	db.SetSlowQuery(time.Hour) // nothing is that slow
	db.MustExec(`INSERT INTO item VALUES (1)`)
	if log := db.TraceLog(); len(log) != 0 {
		t.Errorf("%d entries under an unreachable threshold, want 0", len(log))
	}

	db.SetSlowQuery(time.Nanosecond) // everything is that slow
	db.MustExec(`INSERT INTO item VALUES (2)`)
	log := db.TraceLog()
	if len(log) != 1 || !log[0].Slow {
		t.Fatalf("log = %+v, want one Slow entry", log)
	}
	db.SetSlowQuery(0)
	db.EnableTraceLog(0)
}

// TestTraceDurablePhases: against a durable store the commit path records
// Commit and the trace survives the fsync wait; engine metrics pick up the
// sync-mode-named commit histogram and WAL timings.
func TestTraceDurablePhases(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, Options{Sync: SyncAlways})
	defer db.Close()
	var spans []*QueryTrace
	defer db.OnTrace(func(qt *QueryTrace) { spans = append(spans, qt) })()

	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	db.MustExec(`INSERT INTO item VALUES (1)`)

	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	ins := spans[1]
	if ins.Commit <= 0 {
		t.Errorf("insert Commit span = %v, want > 0", ins.Commit)
	}
	snap := db.Metrics()
	h, ok := snap.Histograms["commit_ns_always"]
	if !ok || h.Count < 2 {
		t.Errorf("commit_ns_always = %+v (ok=%v), want count >= 2", h, ok)
	}
	if wa, ok := snap.Histograms["wal_append_ns"]; !ok || wa.Count < 2 {
		t.Errorf("wal_append_ns = %+v (ok=%v), want count >= 2", wa, ok)
	}
	if wf, ok := snap.Histograms["wal_fsync_ns"]; !ok || wf.Count == 0 {
		t.Errorf("wal_fsync_ns = %+v (ok=%v), want count > 0", wf, ok)
	}
}

// TestSlowQueryOptionArms: Options.SlowQuery arms the slow-query log at
// Open, after recovery replay (replayed statements must not pollute it).
func TestSlowQueryOptionArms(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, Options{Sync: SyncOff})
	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	db.MustExec(`INSERT INTO item VALUES (1)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = mustOpenDB(t, dir, Options{Sync: SyncOff, SlowQuery: time.Nanosecond})
	defer db.Close()
	if log := db.TraceLog(); len(log) != 0 {
		t.Fatalf("recovery replay polluted the slow-query log: %d entries", len(log))
	}
	db.MustExec(`INSERT INTO item VALUES (2)`)
	log := db.TraceLog()
	if len(log) != 1 || !log[0].Slow {
		t.Fatalf("log = %+v, want the post-recovery insert", log)
	}
}

// TestMetricsJSON: WriteMetrics emits one flat JSON object; the always-on
// engine histograms are present without any tracing enabled.
func TestMetricsJSON(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	db.MustExec(`INSERT INTO item VALUES (1)`)

	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteMetrics emitted invalid JSON: %v\n%s", err, buf.String())
	}
	h, ok := m["commit_ns_mem"].(map[string]any)
	if !ok {
		t.Fatalf("commit_ns_mem missing or not an object: %v", m["commit_ns_mem"])
	}
	if c, _ := h["count"].(float64); c < 2 {
		t.Errorf("commit_ns_mem count = %v, want >= 2", h["count"])
	}
	if _, ok := m["stmt_lock_wait_ns"]; !ok {
		t.Error("stmt_lock_wait_ns missing from dump")
	}
}

// TestTraceOffZeroState: with tracing off the per-statement gate stays a
// nil pointer — no span allocation anywhere on the path.
func TestTraceOffZeroState(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE item (id INTEGER)`)
	if qt := db.traceBegin("exec", "x"); qt != nil {
		t.Fatal("traceBegin returned a span with tracing off")
	}
	db.traceFinish(nil, 0, nil) // must be a no-op, not a panic
}

package relational

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/wal"
)

// Reference implementations of the pre-unboxing value semantics, written
// over `any` exactly as value.go had them when Value was an interface. The
// property tests below drive the tagged implementation against these across
// generated values, so the representation rewrite cannot silently shift
// NULL ordering, mixed int/string comparison, or coercion behaviour.

func oldCompare(a, b any) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	ai, aok := a.(int64)
	bi, bok := b.(int64)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	as := oldValueString(a)
	bs := oldValueString(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func oldValueString(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	default:
		return fmt.Sprint(x)
	}
}

func oldCoerce(v any, t Type) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case Integer:
		switch x := v.(type) {
		case int64:
			return x, nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cannot store %q in INTEGER column", x)
			}
			return n, nil
		}
	case Varchar:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		}
	}
	return nil, fmt.Errorf("cannot store %T in %s column", v, t)
}

// toOld maps a tagged Value onto the old interface domain.
func toOld(v Value) any {
	switch v.Kind() {
	case KindNull:
		return nil
	case KindInt:
		return v.MustInt()
	default:
		return v.MustText()
	}
}

// genValue draws from a distribution rich in the cases that matter: NULL,
// boundary ints, strings that are (canonical and non-canonical) renderings
// of ints, quotes, and plain text.
func genValue(r *rand.Rand) Value {
	switch r.Intn(10) {
	case 0:
		return Null
	case 1:
		return Int(int64(r.Intn(5)))
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Int(math.MinInt64)
	case 4:
		return Int(math.MaxInt64)
	case 5:
		return Text(strconv.FormatInt(int64(r.Intn(5)), 10)) // canonical int text
	case 6:
		return Text("0" + strconv.FormatInt(int64(r.Intn(100)), 10)) // leading zero
	case 7:
		return Text("")
	case 8:
		return Text("it's ''quoted''")
	default:
		return Text(fmt.Sprintf("s%d", r.Intn(10)))
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// TestCompareMatchesOldSemantics: compareValues over the tagged struct
// agrees with the interface-era comparison on every generated pair —
// NULL-first ordering, numeric int comparison, lexical strings, and mixed
// int/string via string forms.
func TestCompareMatchesOldSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		a, b := genValue(r), genValue(r)
		got := sign(compareValues(a, b))
		want := sign(oldCompare(toOld(a), toOld(b)))
		if got != want {
			t.Fatalf("compareValues(%#v, %#v) = %d, old = %d", a, b, got, want)
		}
		if got != -sign(compareValues(b, a)) {
			t.Fatalf("compareValues not antisymmetric on (%#v, %#v)", a, b)
		}
	}
}

// TestCoerceMatchesOldSemantics: coercion into both column types agrees
// with the old behaviour, including int→VARCHAR rendering and text→INTEGER
// parse failures.
func TestCoerceMatchesOldSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		v := genValue(r)
		for _, ty := range []Type{Integer, Varchar} {
			got, gotErr := coerce(v, ty)
			want, wantErr := oldCoerce(toOld(v), ty)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("coerce(%#v, %s) err = %v, old err = %v", v, ty, gotErr, wantErr)
			}
			if gotErr == nil {
				if toOld(got) != want {
					t.Fatalf("coerce(%#v, %s) = %#v, old = %#v", v, ty, got, want)
				}
			}
		}
	}
}

// TestJoinKeyMatchesEquality: the hash-join key normalization must agree
// exactly with compareValues equality — two non-NULL values share a join
// key iff the engine's SQL comparison calls them equal. This is the
// property that lets the transient hash join key on the comparable struct
// instead of formatted strings.
func TestJoinKeyMatchesEquality(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200000; i++ {
		a, b := genValue(r), genValue(r)
		if a.IsNull() || b.IsNull() {
			continue // NULL never enters a hash table
		}
		keyEq := a.joinKey() == b.joinKey()
		cmpEq := compareValues(a, b) == 0
		if keyEq != cmpEq {
			t.Fatalf("joinKey equality %v but compare equality %v for %#v vs %#v", keyEq, cmpEq, a, b)
		}
	}
}

// TestCanonInt: canonInt accepts exactly strconv.FormatInt's output.
func TestCanonInt(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 7, 10, -10, 42, math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1} {
		s := strconv.FormatInt(n, 10)
		got, ok := canonInt(s)
		if !ok || got != n {
			t.Errorf("canonInt(%q) = %d, %v; want %d, true", s, got, ok, n)
		}
	}
	for _, s := range []string{"", "-", "+1", "01", "-01", "-0", "1x", "x", " 1", "1 ", "9223372036854775808", "-9223372036854775809", "99999999999999999999"} {
		if _, ok := canonInt(s); ok {
			t.Errorf("canonInt(%q) accepted non-canonical input", s)
		}
	}
}

// TestRowKeyInjective: distinct rows get distinct encodings (DISTINCT
// correctness), equal rows get equal encodings.
func TestRowKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 50000; i++ {
		a := []Value{genValue(r), genValue(r)}
		b := []Value{genValue(r), genValue(r)}
		keyEq := string(appendRowKey(nil, a)) == string(appendRowKey(nil, b))
		valEq := a[0] == b[0] && a[1] == b[1]
		if keyEq != valEq {
			t.Fatalf("row-key equality %v but value equality %v for %#v vs %#v", keyEq, valEq, a, b)
		}
	}
}

// TestValueWalRoundTrip: every value kind survives the WAL's tagged
// encoding bit-exactly, including boundary integers and awkward strings.
func TestValueWalRoundTrip(t *testing.T) {
	cases := []Value{
		Null,
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Text(""), Text("x"), Text("it's ''quoted''"), Text("line\nbreak\x00nul"), Text("héllo 世界"),
	}
	var b []byte
	for _, v := range cases {
		var err error
		if b, err = wal.AppendValue(b, walVal(v)); err != nil {
			t.Fatalf("AppendValue(%#v): %v", v, err)
		}
	}
	for _, want := range cases {
		wv, rest, err := wal.ReadValue(b)
		if err != nil {
			t.Fatalf("ReadValue before %#v: %v", want, err)
		}
		got, err := fromWalVal(wv)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip = %#v, want %#v", got, want)
		}
		b = rest
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
	// The closed-domain guarantee: a corrupt kind must error, not encode.
	if _, err := wal.AppendValue(nil, wal.Value{Kind: 9}); err == nil {
		t.Fatal("AppendValue accepted an unknown kind")
	}
}

// TestSnapshotValueRoundTrip: a snapshot holding every value kind decodes
// to identical rows (tombstone holes preserved).
func TestSnapshotValueRoundTrip(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, a INTEGER, b VARCHAR(64))`)
	db.MustExec(`INSERT INTO t VALUES (1, NULL, NULL)`)
	// Boundary ints go through prepared args: the SQL lexer cannot spell
	// MinInt64 (the sign is a separate token and the magnitude overflows).
	ins, err := db.Prepare(`INSERT INTO t VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(Int(2), Int(math.MaxInt64), Text("plain")); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(Int(3), Int(math.MinInt64), Text("")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO t VALUES (4, 0, 'it''s quoted')`)
	db.MustExec(`DELETE FROM t WHERE id = 2`) // leave a tombstone hole
	snap := db.Snapshot()
	enc, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, want := dec.tables["t"], snap.tables["t"]
	if got.live != want.live || len(got.rows) != len(want.rows) {
		t.Fatalf("shape mismatch: %d/%d rows live %d/%d", len(got.rows), len(want.rows), got.live, want.live)
	}
	for i := range want.rows {
		if (got.rows[i] == nil) != (want.rows[i] == nil) {
			t.Fatalf("row %d tombstone mismatch", i)
		}
		for c := range want.rows[i] {
			// Intern symbols are runtime-only and never serialized, so the
			// decoded row matches modulo sym (Restore re-interns).
			w := want.rows[i][c]
			w.sym = 0
			if got.rows[i][c] != w {
				t.Fatalf("row %d col %d = %#v, want %#v", i, c, got.rows[i][c], w)
			}
		}
	}
}

// TestBindBoundary: the any→Value boundary accepts exactly the canonical
// domain and rejects everything else with an error (never a lossy render).
func TestBindBoundary(t *testing.T) {
	for _, tc := range []struct {
		in   any
		want Value
	}{
		{nil, Null},
		{int64(7), Int(7)},
		{int(7), Int(7)},
		{"x", Text("x")},
		{Int(3), Int(3)},
	} {
		got, err := Bind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Bind(%#v) = %#v, %v; want %#v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []any{3.14, true, []byte("b"), struct{}{}} {
		if _, err := Bind(bad); err == nil {
			t.Errorf("Bind(%#v) accepted a non-canonical type", bad)
		}
	}
}

// TestMixedEqualityConsistentAcrossAccessPaths: an equality on a mixed
// int/text pair must select the same rows whether it runs as a heap scan,
// a hash-index probe, or an IN membership check (list or subquery). The
// joinKey normalization on hash buckets and IN-sets is what aligns them;
// before it, creating an index could change a query's answer.
func TestMixedEqualityConsistentAcrossAccessPaths(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	db.MustExec(`CREATE TABLE s (v VARCHAR(8))`)
	db.MustExec(`INSERT INTO s VALUES ('1'), ('01'), ('x')`)

	count := func(q string) int {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return len(rows.Data)
	}
	scan := count(`SELECT k FROM t WHERE k = '1'`)
	if scan != 1 {
		t.Fatalf("scan path: k = '1' matched %d rows, want 1 (compareValues mixed equality)", scan)
	}
	db.MustExec(`CREATE INDEX ik ON t (k)`)
	if got := count(`SELECT k FROM t WHERE k = '1'`); got != scan {
		t.Errorf("indexed path: k = '1' matched %d rows, scan matched %d — index changed the answer", got, scan)
	}
	// '01' is not canonical integer text: no path may match it against 1.
	if got := count(`SELECT k FROM t WHERE k = '01'`); got != 0 {
		t.Errorf("indexed path: k = '01' matched %d rows, want 0", got)
	}
	list := count(`SELECT k FROM t WHERE k IN ('1', 'x')`)
	sub := count(`SELECT k FROM t WHERE k IN (SELECT v FROM s)`)
	if list != 1 || sub != list {
		t.Errorf("IN paths disagree: list=%d subquery=%d, want both 1", list, sub)
	}

	// Interned variants: the same equalities must answer identically whether
	// the text operands carry intern symbols (stored rows do), arrive as
	// never-interned literals, or interning is off entirely. The symKey
	// lookup fallback and the canonical-int fold running before the symbol
	// fold are what keep these aligned.
	for _, intern := range []bool{true, false} {
		db2 := NewDB()
		if !intern {
			db2.DisableInterning()
		}
		db2.MustExec(`CREATE TABLE a (v VARCHAR(8))`)
		db2.MustExec(`INSERT INTO a VALUES ('1'), ('x'), ('y')`)
		db2.MustExec(`CREATE TABLE b (v VARCHAR(8))`)
		db2.MustExec(`INSERT INTO b VALUES ('x'), ('z'), ('1')`)
		count2 := func(q string) int {
			rows, err := db2.Query(q)
			if err != nil {
				t.Fatalf("intern=%v %s: %v", intern, q, err)
			}
			return len(rows.Data)
		}
		// Text scan vs indexed probe vs hash join vs IN: all on TEXT = TEXT.
		if got := count2(`SELECT v FROM a WHERE v = 'x'`); got != 1 {
			t.Errorf("intern=%v text scan: got %d rows, want 1", intern, got)
		}
		db2.MustExec(`CREATE INDEX ia ON a (v)`)
		if got := count2(`SELECT v FROM a WHERE v = 'x'`); got != 1 {
			t.Errorf("intern=%v text indexed: got %d rows, want 1", intern, got)
		}
		if got := count2(`SELECT a.v FROM a, b WHERE a.v = b.v`); got != 2 {
			t.Errorf("intern=%v text join: got %d rows, want 2 ('1' and 'x')", intern, got)
		}
		if got := count2(`SELECT v FROM a WHERE v IN (SELECT v FROM b)`); got != 2 {
			t.Errorf("intern=%v text IN-subquery: got %d rows, want 2", intern, got)
		}
		// Mixed int/text across the intern boundary: interned '1' in a TEXT
		// column must still equal INTEGER 1 and never equal '01'.
		db2.MustExec(`CREATE TABLE n (k INTEGER)`)
		db2.MustExec(`INSERT INTO n VALUES (1)`)
		if got := count2(`SELECT n.k FROM n, a WHERE n.k = a.v`); got != 1 {
			t.Errorf("intern=%v mixed join: got %d rows, want 1", intern, got)
		}
	}
}

// FuzzCompareValues drives arbitrary int/string pairs through the new and
// old comparison in all kind combinations.
func FuzzCompareValues(f *testing.F) {
	f.Add(int64(1), "1", uint8(0), uint8(2))
	f.Add(int64(-5), "-5", uint8(1), uint8(2))
	f.Add(int64(0), "", uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, n int64, s string, ka, kb uint8) {
		mk := func(k uint8) Value {
			switch k % 3 {
			case 0:
				return Null
			case 1:
				return Int(n)
			default:
				return Text(s)
			}
		}
		a, b := mk(ka), mk(kb)
		if sign(compareValues(a, b)) != sign(oldCompare(toOld(a), toOld(b))) {
			t.Fatalf("compare mismatch for %#v vs %#v", a, b)
		}
		if !a.IsNull() && !b.IsNull() {
			if (a.joinKey() == b.joinKey()) != (compareValues(a, b) == 0) {
				t.Fatalf("joinKey/compare mismatch for %#v vs %#v", a, b)
			}
		}
	})
}

package relational

import (
	"fmt"
	"testing"
)

// Allocation-regression pins for the unboxed value pipeline. Each pin runs
// the same streaming query over a small and a large table and asserts the
// allocation difference is zero: any per-row allocation on the scan, probe,
// range, or join path multiplies by the row delta and fails loudly. Fixed
// per-query overhead (environment, iterator chain, counters) is deliberately
// not pinned — it does not scale with data.

// allocDB builds parent/child tables sized n with the index flavours the
// pinned access paths need: hash indexes on id/parentId (automatic) and an
// ordered (parentId, pos) index for range windows.
func allocDB(t testing.TB, n int) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE par (id INTEGER, name VARCHAR(32))`)
	db.MustExec(`CREATE TABLE child (id INTEGER, parentId INTEGER, pos INTEGER, payload VARCHAR(32))`)
	db.MustExec(`CREATE ORDERED INDEX oc_pp ON child (parentId, pos)`)
	for p := 1; p <= n; p++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO par VALUES (%d, 'p%d')`, p, p))
		for c := 0; c < 4; c++ {
			id := p*10 + c
			db.MustExec(fmt.Sprintf(`INSERT INTO child VALUES (%d, %d, %d, 'c%d')`, id, p, c, id))
		}
	}
	return db
}

// streamCount drains a query through the streaming path, returning the row
// count (so the compiler cannot elide the work).
func streamCount(t testing.TB, db *DB, q string) int {
	t.Helper()
	n := 0
	if _, err := db.QueryEach(q, func(row []Value) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// perRowAllocs measures the per-row allocation count of query q by
// differencing AllocsPerRun over a small and a large database.
func perRowAllocs(t *testing.T, q string, wantSmall, wantLarge int) float64 {
	t.Helper()
	small := allocDB(t, 8)
	large := allocDB(t, 64)
	// Warm both: first execution populates the statement shape cache, plan
	// caches, and grows the reusable iterator buffers to steady state.
	nSmall := streamCount(t, small, q)
	nLarge := streamCount(t, large, q)
	if nSmall != wantSmall || nLarge != wantLarge {
		t.Fatalf("row counts = %d/%d, want %d/%d (query shape changed?)", nSmall, nLarge, wantSmall, wantLarge)
	}
	const runs = 20
	aSmall := testing.AllocsPerRun(runs, func() { streamCount(t, small, q) })
	aLarge := testing.AllocsPerRun(runs, func() { streamCount(t, large, q) })
	return (aLarge - aSmall) / float64(nLarge-nSmall)
}

func pinZero(t *testing.T, name, q string, wantSmall, wantLarge int) {
	t.Helper()
	if got := perRowAllocs(t, q, wantSmall, wantLarge); got > 0 {
		t.Errorf("%s: %.3f allocs/row, want 0", name, got)
	}
}

// TestAllocPinTableScan: a full heap scan with a non-indexable predicate
// must not allocate per row.
func TestAllocPinTableScan(t *testing.T) {
	pinZero(t, "table scan", `SELECT id, payload FROM child WHERE pos < 3`, 8*3, 64*3)
}

// TestAllocPinHashIndexProbe: a join probing the child hash index once per
// parent row must not allocate per row.
func TestAllocPinHashIndexProbe(t *testing.T) {
	pinZero(t, "hash probe", `SELECT c.id FROM par p, child c WHERE c.parentId = p.id`, 8*4, 64*4)
}

// TestAllocPinOrderedRangeScan: a (parentId, pos) B+tree window per outer
// row must not allocate per row.
func TestAllocPinOrderedRangeScan(t *testing.T) {
	pinZero(t, "range scan", `SELECT c.id FROM par p, child c WHERE c.parentId = p.id AND c.pos >= 1 AND c.pos <= 2`, 8*2, 64*2)
}

// TestAllocPinSort: ORDER BY materializes and sorts every input row; with
// the pooled sort scratch (arena + row headers reused across runs) the
// per-row cost must stay near zero. A small epsilon absorbs the rare GC
// clearing the sync.Pool mid-measurement (one arena regrow amortized over
// the row delta), while still failing loudly on any true per-row
// allocation — the pre-pool baseline was ~1 alloc/row.
func TestAllocPinSort(t *testing.T) {
	got := perRowAllocs(t, `SELECT id, payload FROM child ORDER BY payload, id`, 8*4, 64*4)
	if got > 0.1 {
		t.Errorf("sort: %.3f allocs/row, want ~0", got)
	}
}

// TestAllocPinTextEquality: a TEXT = TEXT scan over interned columns must
// not allocate per row (the symbol fast path compares two uint32s).
func TestAllocPinTextEquality(t *testing.T) {
	pinZero(t, "text equality scan", `SELECT id FROM child WHERE payload != 'c80'`, 8*4-1, 64*4-1)
}

// TestAllocPinTracingOn: with a trace hook registered, the per-statement
// span is one fixed allocation — the per-row path must stay untouched, so
// differencing small/large still yields zero. (The tracing-OFF path is
// pinned by every other test in this file: they all run with db.obs nil.)
func TestAllocPinTracingOn(t *testing.T) {
	q := `SELECT id, payload FROM child WHERE pos < 3`
	small := allocDB(t, 8)
	large := allocDB(t, 64)
	defer small.OnTrace(func(*QueryTrace) {})()
	defer large.OnTrace(func(*QueryTrace) {})()
	nSmall := streamCount(t, small, q)
	nLarge := streamCount(t, large, q)
	if nSmall != 8*3 || nLarge != 64*3 {
		t.Fatalf("row counts = %d/%d", nSmall, nLarge)
	}
	const runs = 20
	aSmall := testing.AllocsPerRun(runs, func() { streamCount(t, small, q) })
	aLarge := testing.AllocsPerRun(runs, func() { streamCount(t, large, q) })
	if got := (aLarge - aSmall) / float64(nLarge-nSmall); got > 0 {
		t.Errorf("tracing-on scan: %.3f allocs/row, want 0", got)
	}
}

// TestAllocPinHashJoinProbe: joining on an unindexed column builds one
// transient hash table (its cost scales with the build side, which is held
// constant here by probing a fixed-size build table) — the probe side must
// not allocate per row.
func TestAllocPinHashJoinProbe(t *testing.T) {
	small := allocDB(t, 8)
	large := allocDB(t, 64)
	// dim has the same 4 rows in both databases and no index on pos, so the
	// level compiles to a transient hash join whose build cost is constant
	// while the probe count scales with child — the size difference below
	// therefore isolates the per-probe-row allocations.
	for _, db := range []*DB{small, large} {
		db.MustExec(`CREATE TABLE dim (pos INTEGER, label VARCHAR(8))`)
		for i := 0; i < 4; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO dim VALUES (%d, 'd%d')`, i, i))
		}
	}
	q := `SELECT d.label FROM child c, dim d WHERE d.pos = c.pos`
	nSmall := streamCount(t, small, q)
	nLarge := streamCount(t, large, q)
	if nSmall != 8*4 || nLarge != 64*4 {
		t.Fatalf("row counts = %d/%d", nSmall, nLarge)
	}
	const runs = 20
	aSmall := testing.AllocsPerRun(runs, func() { streamCount(t, small, q) })
	aLarge := testing.AllocsPerRun(runs, func() { streamCount(t, large, q) })
	if got := (aLarge - aSmall) / float64(nLarge-nSmall); got > 0 {
		t.Errorf("hash-join probe: %.3f allocs/row, want 0", got)
	}
}

package outerunion

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// TestParallelSOUEquivalence reconstructs every e1 subtree of a generated
// document with the serial executor and with a 4-worker budget. The sorted
// outer-union stream must be row-for-row identical under parallelism
// (partition concatenation reproduces the serial stream, and the ORDER BY
// contract pins document order), so the reconstructed subtrees — roots,
// ids, child order — must serialize identically too.
func TestParallelSOUEquivalence(t *testing.T) {
	build := func(par int) (*relational.DB, *shred.Mapping) {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 3, Depth: 4, Fanout: 4, Seed: 21})
		m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: true})
		if err != nil {
			t.Fatal(err)
		}
		db := relational.NewDB()
		db.SetParallelism(par)
		if _, err := shred.Load(db, m, doc); err != nil {
			t.Fatal(err)
		}
		return db, m
	}
	render := func(subs []*Subtree) string {
		var b strings.Builder
		for _, s := range subs {
			b.WriteString(xmltree.Serialize(s.Root))
			b.WriteByte('\n')
		}
		return b.String()
	}
	sdb, sm := build(1)
	pdb, pm := build(4)
	for _, q := range []struct{ target, where string }{
		{"e1", ""},
		{"e2", ""},
		{"e1", "T.id > 10"},
	} {
		want, err := Query(sdb, sm, q.target, q.where)
		if err != nil {
			t.Fatalf("serial %s/%q: %v", q.target, q.where, err)
		}
		got, err := Query(pdb, pm, q.target, q.where)
		if err != nil {
			t.Fatalf("parallel %s/%q: %v", q.target, q.where, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s/%q: %d subtrees parallel, %d serial", q.target, q.where, len(got), len(want))
		}
		for i := range want {
			if got[i].RootID != want[i].RootID {
				t.Fatalf("%s/%q: subtree %d root id %d != %d (document order lost)",
					q.target, q.where, i, got[i].RootID, want[i].RootID)
			}
		}
		if render(got) != render(want) {
			t.Errorf("%s/%q: reconstructed subtrees diverge under parallelism", q.target, q.where)
		}
	}
}

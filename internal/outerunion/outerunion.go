// Package outerunion implements the Sorted Outer Union method (§5.2, after
// Shanmugasundaram et al., VLDB '00): a subtree stored across multiple
// tables is returned as one sorted stream of wide, NULL-padded tuples —
// parents before children — and reassembled into XML at the client.
package outerunion

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// Plan describes the wide-tuple layout of an outer union query over a
// subtree rooted at Target.
type Plan struct {
	M      *shred.Mapping
	Target string
	// Tables lists the subtree's table elements in pre-order.
	Tables []string
	// IDCol maps a table element to the index of its id column in the wide
	// tuple.
	IDCol map[string]int
	// DataCols maps a table element to the wide-tuple indexes of its data
	// columns (aligned with TableMap.Columns).
	DataCols map[string][]int
	// ParentOf maps a table element to its parent within the subtree ("" at
	// the target level).
	ParentOf map[string]string
	// Width is the wide tuple's column count.
	Width int
	// ColNames are the generated output column names (C1…Cn).
	ColNames []string
}

// BuildPlan computes the wide-tuple layout for the subtree rooted at target.
func BuildPlan(m *shred.Mapping, target string) (*Plan, error) {
	if m.Table(target) == nil {
		return nil, fmt.Errorf("outerunion: element %q has no table", target)
	}
	p := &Plan{
		M:        m,
		Target:   target,
		IDCol:    make(map[string]int),
		DataCols: make(map[string][]int),
		ParentOf: make(map[string]string),
	}
	var walk func(elem, parent string)
	walk = func(elem, parent string) {
		p.Tables = append(p.Tables, elem)
		p.ParentOf[elem] = parent
		p.IDCol[elem] = p.Width
		p.Width++
		tm := m.Table(elem)
		cols := make([]int, len(tm.Columns))
		for i := range tm.Columns {
			cols[i] = p.Width
			p.Width++
		}
		p.DataCols[elem] = cols
		for _, c := range tm.ChildTables {
			walk(c, elem)
		}
	}
	walk(target, "")
	p.ColNames = make([]string, p.Width)
	for i := range p.ColNames {
		p.ColNames[i] = fmt.Sprintf("C%d", i+1)
	}
	return p, nil
}

// SQL generates the WITH…UNION ALL…ORDER BY statement for the plan. where is
// an optional SQL condition over the target table (alias T); per §5.2 all
// value conditions are tested in the first, base subquery, since the other
// branches of the outer union cannot remove tuples.
func (p *Plan) SQL(where string) string {
	var b strings.Builder
	b.WriteString("WITH ")
	colList := strings.Join(p.ColNames, ", ")
	for qi, elem := range p.Tables {
		tm := p.M.Table(elem)
		if qi > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "Q%d(%s) AS (SELECT ", qi+1, colList)
		exprs := make([]string, p.Width)
		for i := range exprs {
			exprs[i] = "NULL"
		}
		if qi == 0 {
			exprs[p.IDCol[elem]] = "T.id"
			for i, wi := range p.DataCols[elem] {
				exprs[wi] = "T." + tm.Columns[i].Name
			}
			b.WriteString(strings.Join(exprs, ", "))
			fmt.Fprintf(&b, " FROM %s T", tm.Name)
			if where != "" {
				fmt.Fprintf(&b, " WHERE %s", where)
			}
		} else {
			parent := p.ParentOf[elem]
			parentQ := fmt.Sprintf("Q%d", indexOf(p.Tables, parent)+1)
			// Key columns of all ancestors are propagated from the parent
			// branch so the ORDER BY groups children under their parents.
			for anc := parent; anc != ""; anc = p.ParentOf[anc] {
				ci := p.IDCol[anc]
				exprs[ci] = fmt.Sprintf("%s.%s", parentQ, p.ColNames[ci])
			}
			exprs[p.IDCol[elem]] = "T.id"
			for i, wi := range p.DataCols[elem] {
				exprs[wi] = "T." + tm.Columns[i].Name
			}
			b.WriteString(strings.Join(exprs, ", "))
			fmt.Fprintf(&b, " FROM %s, %s T WHERE T.parentId = %s.%s",
				parentQ, tm.Name, parentQ, p.ColNames[p.IDCol[parent]])
		}
		b.WriteString(")")
	}
	b.WriteString(" ")
	for qi := range p.Tables {
		if qi > 0 {
			b.WriteString(" UNION ALL ")
		}
		fmt.Fprintf(&b, "(SELECT * FROM Q%d)", qi+1)
	}
	// Sort by every id column in pre-order; NULLs sort first, so parents
	// precede their children and subtrees do not interleave.
	var keys []string
	for _, elem := range p.Tables {
		keys = append(keys, p.ColNames[p.IDCol[elem]])
	}
	fmt.Fprintf(&b, " ORDER BY %s", strings.Join(keys, ", "))
	return b.String()
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

// tableOfRow identifies which branch produced a wide tuple: the table whose
// id column is the deepest non-NULL key.
func (p *Plan) tableOfRow(row []relational.Value) (string, int64, bool) {
	for i := len(p.Tables) - 1; i >= 0; i-- {
		elem := p.Tables[i]
		if v, ok := row[p.IDCol[elem]].Int(); ok {
			// The deepest table with a set id whose data region may still
			// be another branch's ancestor propagation — ancestors only
			// propagate key columns, so the deepest non-NULL id column is
			// exactly the producing branch.
			return elem, v, true
		}
	}
	return "", 0, false
}

// Subtree is one reconstructed result subtree plus the tuple ids it came
// from (per table element) — the insert methods need the id sets.
type Subtree struct {
	Root *xmltree.Element
	// IDs maps table element → tuple ids within this subtree, in stream
	// order.
	IDs map[string][]int64
	// RootID is the target tuple's id.
	RootID int64
}

// reconstructor consumes the sorted wide-tuple stream one row at a time —
// fed directly from the streaming query pipeline, so with sort elision the
// first subtree assembles while the join is still producing later ones and
// the wide-tuple result is never buffered whole.
type reconstructor struct {
	p   *Plan
	out []*Subtree
	// elems maps tuple ids to materialized elements within the current
	// target subtree (ids are unique document-wide).
	elems map[int64]*xmltree.Element
	rank  map[*xmltree.Element]int
	cur   *Subtree
}

func (p *Plan) newReconstructor() *reconstructor {
	return &reconstructor{
		p:     p,
		elems: make(map[int64]*xmltree.Element),
		rank:  make(map[*xmltree.Element]int),
	}
}

// feed consumes one wide tuple of the sorted stream.
func (r *reconstructor) feed(row []relational.Value) error {
	p := r.p
	elem, id, ok := p.tableOfRow(row)
	if !ok {
		return fmt.Errorf("outerunion: all-NULL key row")
	}
	tm := p.M.Table(elem)
	vals := make(map[string]relational.Value, len(tm.Columns)+2)
	vals["id"] = relational.Int(id)
	for i, wi := range p.DataCols[elem] {
		vals[strings.ToLower(tm.Columns[i].Name)] = row[wi]
	}
	e, err := p.M.ElementFromRow(elem, vals)
	if err != nil {
		return err
	}
	if elem == p.Target {
		r.cur = &Subtree{Root: e, RootID: id, IDs: make(map[string][]int64)}
		r.cur.IDs[elem] = append(r.cur.IDs[elem], id)
		r.out = append(r.out, r.cur)
		r.elems = map[int64]*xmltree.Element{id: e}
		return nil
	}
	if r.cur == nil {
		return fmt.Errorf("outerunion: child tuple before any target tuple")
	}
	parentID, ok := row[p.IDCol[p.ParentOf[elem]]].Int()
	if !ok {
		return fmt.Errorf("outerunion: child tuple with NULL parent key")
	}
	parent := r.elems[parentID]
	if parent == nil {
		return fmt.Errorf("outerunion: child tuple %d arrived before parent %d (sort violated)", id, parentID)
	}
	parent.AppendChild(e)
	r.rank[e] = indexOf(p.Tables, elem)
	r.elems[id] = e
	r.cur.IDs[elem] = append(r.cur.IDs[elem], id)
	return nil
}

// finish reorders children and returns the assembled subtrees.
func (r *reconstructor) finish() []*Subtree {
	// NULLs-first sorting emits later sibling branches before earlier ones;
	// restore schema order among table children (inlined children, with no
	// rank, stay first).
	for _, st := range r.out {
		reorderChildren(st.Root, r.rank)
	}
	return r.out
}

// Reconstruct reassembles a materialized sorted wide-tuple result into
// subtrees, one per target tuple. Query streams instead; this remains for
// callers that already hold the rows.
func (p *Plan) Reconstruct(rows *relational.Rows) ([]*Subtree, error) {
	r := p.newReconstructor()
	for _, row := range rows.Data {
		if err := r.feed(row); err != nil {
			return nil, err
		}
	}
	return r.finish(), nil
}

// reorderChildren stable-sorts each element's children by producing-table
// pre-order rank; nodes without a rank (inlined content, text) keep their
// position at the front.
func reorderChildren(e *xmltree.Element, rank map[*xmltree.Element]int) {
	kids := append([]xmltree.Node(nil), e.Children()...)
	needs := false
	last := -1
	for _, k := range kids {
		if ke, ok := k.(*xmltree.Element); ok {
			if r, has := rank[ke]; has {
				if r < last {
					needs = true
				}
				last = r
			}
		}
	}
	if needs {
		keyOf := func(n xmltree.Node) int {
			if ke, ok := n.(*xmltree.Element); ok {
				if r, has := rank[ke]; has {
					return r
				}
			}
			return -1
		}
		// Insertion sort keeps the order stable and the code allocation-free
		// beyond the copied slice.
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && keyOf(kids[j]) < keyOf(kids[j-1]); j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		for _, k := range kids {
			e.RemoveChild(k)
		}
		for _, k := range kids {
			e.AppendChild(k)
		}
	}
	for _, k := range e.ChildElements() {
		reorderChildren(k, rank)
	}
}

// Query runs the outer union for the subtree(s) rooted at target matching
// where, returning reconstructed subtrees. This is the binding phase shared
// by the multilevel update algorithm (§6.3) and the insert methods (§6.2).
// The wide-tuple stream feeds reconstruction row by row: under ordered
// indexes the sort is elided and subtrees assemble in document order while
// the pipeline still runs, never materializing the padded result.
func Query(db *relational.DB, m *shred.Mapping, target, where string) ([]*Subtree, error) {
	plan, err := BuildPlan(m, target)
	if err != nil {
		return nil, err
	}
	r := plan.newReconstructor()
	if _, err := db.QueryEach(plan.SQL(where), r.feed); err != nil {
		return nil, err
	}
	return r.finish(), nil
}

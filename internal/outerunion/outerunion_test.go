package outerunion

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func loadCust(t testing.TB) (*relational.DB, *shred.Mapping) {
	t.Helper()
	dtd := xmltree.MustParseDTD(testdocs.CustDTD)
	m, err := shred.BuildMapping(dtd, "CustDB", shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, testdocs.Cust()); err != nil {
		t.Fatal(err)
	}
	return db, m
}

func TestPlanLayout(t *testing.T) {
	_, m := loadCust(t)
	p, err := BuildPlan(m, "Customer")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Customer", "Order", "OrderLine"}
	if len(p.Tables) != 3 {
		t.Fatalf("tables = %v", p.Tables)
	}
	for i, e := range want {
		if p.Tables[i] != e {
			t.Errorf("table %d = %s", i, p.Tables[i])
		}
	}
	if p.IDCol["Customer"] != 0 {
		t.Errorf("customer id col = %d", p.IDCol["Customer"])
	}
	if p.ParentOf["OrderLine"] != "Order" {
		t.Errorf("parent of OrderLine = %s", p.ParentOf["OrderLine"])
	}
	if p.Width <= 3 {
		t.Errorf("width = %d", p.Width)
	}
}

func TestSQLIsFigure5Shaped(t *testing.T) {
	_, m := loadCust(t)
	p, err := BuildPlan(m, "Customer")
	if err != nil {
		t.Fatal(err)
	}
	sql := p.SQL("T.Name_v = 'John'")
	for _, frag := range []string{"WITH Q1(", "Q2(", "Q3(", "UNION ALL", "ORDER BY", "T.Name_v = 'John'"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing %q:\n%s", frag, sql)
		}
	}
	// Conditions appear only in the base subquery (§5.2).
	if strings.Count(sql, "Name_v = 'John'") != 1 {
		t.Errorf("value condition duplicated:\n%s", sql)
	}
}

// TestExample6OuterUnion runs the paper's Example 6 through the full
// pipeline: SQL generation, sorted stream, reconstruction.
func TestExample6OuterUnion(t *testing.T) {
	db, m := loadCust(t)
	subs, err := Query(db, m, "Customer", "T.Name_v = 'John'")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subtrees, want 2 Johns", len(subs))
	}
	// The Seattle John has 2 orders with 3 lines total.
	var seattle *Subtree
	for _, s := range subs {
		if s.Root.FirstChildNamed("Address").FirstChildNamed("City").TextContent() == "Seattle" {
			seattle = s
		}
	}
	if seattle == nil {
		t.Fatal("Seattle John missing")
	}
	orders := seattle.Root.ChildElementsNamed("Order")
	if len(orders) != 2 {
		t.Fatalf("orders = %d", len(orders))
	}
	lines := 0
	for _, o := range orders {
		lines += len(o.ChildElementsNamed("OrderLine"))
	}
	if lines != 3 {
		t.Errorf("lines = %d", lines)
	}
	// Inlined content is present.
	if seattle.Root.FirstChildNamed("Name").TextContent() != "John" {
		t.Error("inlined Name missing")
	}
	if got := orders[0].FirstChildNamed("Status").TextContent(); got != "ready" {
		t.Errorf("status = %q", got)
	}
	// ID sets per table are recorded for the insert methods.
	if len(seattle.IDs["Customer"]) != 1 || len(seattle.IDs["Order"]) != 2 || len(seattle.IDs["OrderLine"]) != 3 {
		t.Errorf("id sets = %v", seattle.IDs)
	}
}

// TestReconstructionMatchesDirectReconstruct cross-checks the outer union
// subtree against shred.Reconstruct output.
func TestReconstructionMatchesDirectReconstruct(t *testing.T) {
	db, m := loadCust(t)
	subs, err := Query(db, m, "CustDB", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("subtrees = %d", len(subs))
	}
	direct, err := shred.Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	got := xmltree.Serialize(subs[0].Root)
	want := direct.String()
	if got != want {
		t.Errorf("outer union reconstruction differs:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestEmptyResult(t *testing.T) {
	db, m := loadCust(t)
	subs, err := Query(db, m, "Customer", "T.Name_v = 'Nobody'")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("got %d subtrees", len(subs))
	}
}

func TestLeafTarget(t *testing.T) {
	db, m := loadCust(t)
	subs, err := Query(db, m, "OrderLine", "T.ItemName_v = 'tire'")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("tire lines = %d", len(subs))
	}
	for _, s := range subs {
		if s.Root.FirstChildNamed("ItemName").TextContent() != "tire" {
			t.Error("wrong line")
		}
	}
}

func TestBadTarget(t *testing.T) {
	_, m := loadCust(t)
	if _, err := BuildPlan(m, "Name"); err == nil {
		t.Error("inlined element should have no plan")
	}
}

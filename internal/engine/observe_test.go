package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/relational"
)

// TestStoreExplainAnalyze: the Store forwards EXPLAIN ANALYZE to its
// relational substrate; an analyzed scan over a shredded table carries
// actual row counts.
func TestStoreExplainAnalyze(t *testing.T) {
	s := openCust(t, Options{})
	tbl := s.M.Table("Customer").Name
	out, err := s.ExplainAnalyze("SELECT id FROM " + tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(actual ") {
		t.Errorf("no actuals in analyzed plan:\n%s", out)
	}
	if !strings.Contains(out, "Execution: rows=") {
		t.Errorf("no execution footer:\n%s", out)
	}
}

// TestStoreTracing: an XML-level update fans out into traced SQL
// statements; the store-level hook observes them and the metrics dump stays
// valid JSON.
func TestStoreTracing(t *testing.T) {
	s := openCust(t, Options{})
	var n int
	cancel := s.OnTrace(func(qt *relational.QueryTrace) { n++ })
	if _, err := s.DeleteSubtrees("Customer", "Name_v = 'John'"); err != nil {
		t.Fatal(err)
	}
	cancel()
	if n == 0 {
		t.Error("delete produced no trace spans")
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if _, ok := m["commit_ns_mem"]; !ok {
		t.Error("commit histogram missing from store metrics dump")
	}
}

// TestStoreSlowQueryLog: the trace ring is reachable through the Store.
func TestStoreSlowQueryLog(t *testing.T) {
	s := openCust(t, Options{})
	s.EnableTraceLog(8)
	tbl := s.M.Table("Order").Name
	if _, err := s.DB.Query("SELECT id FROM " + tbl); err != nil {
		t.Fatal(err)
	}
	log := s.TraceLog()
	if len(log) == 0 {
		t.Fatal("trace ring empty after a traced query")
	}
	last := log[len(log)-1]
	if !strings.Contains(last.SQL, tbl) {
		t.Errorf("last ring entry = %q, want the %s query", last.SQL, tbl)
	}
	s.EnableTraceLog(0)
}

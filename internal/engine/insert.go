package engine

import (
	"fmt"
	"strings"

	"repro/internal/outerunion"
	"repro/internal/relational"
)

// CopySubtrees copies every subtree rooted at tuples of srcElem matching the
// SQL condition (over srcElem's table, alias T for the outer union, or
// unqualified columns otherwise) to become children of the tuple
// dstParentID, using the store's configured insert method. Copy semantics:
// all tuples are replicated with fresh ids that preserve connectivity
// (§6.2). It returns the number of subtree roots copied.
func (s *Store) CopySubtrees(srcElem, where string, dstParentID int64) (int, error) {
	if s.M.Table(srcElem) == nil {
		return 0, fmt.Errorf("engine: element %q has no table; use InsertInlined for simple insertions", srcElem)
	}
	// Every insert method is a statement sequence (staging, remapping,
	// replication, ASR paths); run it atomically so a mid-sequence failure
	// leaves no partial copy and returns the reserved ids.
	var n int
	err := s.atomically(func() error {
		var err error
		switch s.Opt.Insert {
		case TupleInsert:
			n, err = s.tupleInsert(srcElem, where, dstParentID)
		case TableInsert:
			n, err = s.tableInsert(srcElem, where, dstParentID)
		case ASRInsert:
			n, err = s.asrInsert(srcElem, where, dstParentID)
		default:
			err = fmt.Errorf("engine: unknown insert method %v", s.Opt.Insert)
		}
		return err
	})
	return n, err
}

// tupleInsert implements §6.2.1: read the source subtree via Sorted Outer
// Union one tuple at a time, give every source element a new unique id
// through an in-memory mapping structure, and issue one INSERT per tuple.
func (s *Store) tupleInsert(srcElem, where string, dstParentID int64) (int, error) {
	plan, err := outerunion.BuildPlan(s.M, srcElem)
	if err != nil {
		return 0, err
	}
	rows, err := s.sql().Query(plan.SQL(where))
	if err != nil {
		return 0, err
	}
	idMap := make(map[int64]int64)
	// One prepared INSERT per relation (Store-cached, so repeated copies
	// reuse the parse too): the per-tuple loop binds values instead of
	// re-formatting and re-parsing SQL for every tuple.
	inserts := make(map[string]*relational.Prepared)
	roots := 0
	for _, row := range rows.Data {
		elem, oldID, ok := planRowTable(plan, row)
		if !ok {
			return roots, fmt.Errorf("engine: malformed outer union row")
		}
		newID := s.AllocateIDs(1) // gapless allocation (§6.2.1)
		idMap[oldID] = newID
		tm := s.M.Table(elem)
		var parent relational.Value
		if elem == srcElem {
			parent = relational.Int(dstParentID)
			roots++
		} else {
			oldParent, ok := row[plan.IDCol[plan.ParentOf[elem]]].Int()
			if !ok {
				return roots, fmt.Errorf("engine: child tuple with NULL parent key")
			}
			np, ok := idMap[oldParent]
			if !ok {
				return roots, fmt.Errorf("engine: parent %d not yet remapped (sort violated)", oldParent)
			}
			parent = relational.Int(np)
		}
		p := inserts[elem]
		if p == nil {
			cols := []string{"id", "parentId"}
			marks := []string{"?", "?"}
			for _, c := range tm.Columns {
				cols = append(cols, c.Name)
				marks = append(marks, "?")
			}
			var err error
			p, err = s.prep(fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
				tm.Name, strings.Join(cols, ", "), strings.Join(marks, ", ")))
			if err != nil {
				return roots, err
			}
			inserts[elem] = p
		}
		args := make([]relational.Value, 0, len(tm.Columns)+2)
		args = append(args, relational.Int(newID), parent)
		for i := range tm.Columns {
			args = append(args, row[plan.DataCols[elem][i]])
		}
		if _, err := s.sql().ExecPrepared(p, args...); err != nil {
			return roots, err
		}
	}
	if s.ASR != nil {
		if err := s.rebuildASRPathsFor(srcElem, idMap, dstParentID); err != nil {
			return roots, err
		}
	}
	return roots, nil
}

func planRowTable(p *outerunion.Plan, row []relational.Value) (string, int64, bool) {
	for i := len(p.Tables) - 1; i >= 0; i-- {
		elem := p.Tables[i]
		if v, ok := row[p.IDCol[elem]].Int(); ok {
			return elem, v, true
		}
	}
	return "", 0, false
}

// tableInsert implements §6.2.2: stage the source rows in temporary tables
// (one per data relation), remap all ids at once with the min/max offset
// heuristic, and insert en masse with one INSERT…SELECT per relation.
func (s *Store) tableInsert(srcElem, where string, dstParentID int64) (int, error) {
	subtree := s.M.Descendants(srcElem)
	temp := func(elem string) string { return "temp_" + s.M.Table(elem).Name }

	// Stage: temp tables populated top-down by joining to the parent temp.
	for i, elem := range subtree {
		tm := s.M.Table(elem)
		colDefs := []string{"id INTEGER", "parentId INTEGER"}
		if s.Opt.OrderColumn {
			colDefs = append(colDefs, "pos INTEGER")
		}
		for _, c := range tm.Columns {
			colDefs = append(colDefs, c.Name+" VARCHAR(255)")
		}
		if _, err := s.sql().Exec(fmt.Sprintf("CREATE TEMP TABLE %s (%s)", temp(elem), strings.Join(colDefs, ", "))); err != nil {
			return 0, err
		}
		cols := "id, parentId"
		if dl := dataColumnList(tm, s.Opt.OrderColumn); dl != "" {
			cols += ", " + dl
		}
		if i == 0 {
			sql := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s", temp(elem), cols, tm.Name)
			if where != "" {
				sql += " WHERE " + where
			}
			if _, err := s.sql().Exec(sql); err != nil {
				return 0, err
			}
			continue
		}
		parentTemp := temp(s.parentWithin(subtree, elem))
		qualified := make([]string, 0, len(tm.Columns)+3)
		qualified = append(qualified, "C.id", "C.parentId")
		if s.Opt.OrderColumn {
			qualified = append(qualified, "C.pos")
		}
		for _, c := range tm.Columns {
			qualified = append(qualified, "C."+c.Name)
		}
		sql := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s P, %s C WHERE C.parentId = P.id",
			temp(elem), strings.Join(qualified, ", "), parentTemp, tm.Name)
		if _, err := s.sql().Exec(sql); err != nil {
			return 0, err
		}
	}

	// Offset heuristic: minId/maxId over the staged tree, one aggregate
	// query per temp table.
	minID, maxID := int64(0), int64(0)
	first := true
	for _, elem := range subtree {
		rows, err := s.sql().Query(fmt.Sprintf("SELECT MIN(id), MAX(id) FROM %s", temp(elem)))
		if err != nil {
			return 0, err
		}
		lo, ok1 := rows.Data[0][0].Int()
		hi, ok2 := rows.Data[0][1].Int()
		if !ok1 || !ok2 {
			continue // empty staged table
		}
		if first || lo < minID {
			minID = lo
		}
		if first || hi > maxID {
			maxID = hi
		}
		first = false
	}
	roots := 0
	if rows, err := s.sql().Query(fmt.Sprintf("SELECT COUNT(*) FROM %s", temp(srcElem))); err == nil {
		roots = int(rows.Data[0][0].MustInt())
	}
	if first || roots == 0 {
		for _, elem := range subtree {
			if _, err := s.sql().Exec("DROP TABLE " + temp(elem)); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	offset := s.NextID() - minID
	s.AllocateIDs(maxID - minID + 1)

	// Remap: one arithmetic UPDATE per temp table, then point the copied
	// roots at their new parent. The Store-cached prepared statements keep
	// the remaps on the one-parse path like the tuple-insert loops.
	for i, elem := range subtree {
		remap, err := s.prep(fmt.Sprintf("UPDATE %s SET id = id + ?, parentId = parentId + ?", temp(elem)))
		if err != nil {
			return 0, err
		}
		if _, err := s.sql().ExecPrepared(remap, relational.Int(offset), relational.Int(offset)); err != nil {
			return 0, err
		}
		if i == 0 {
			repoint, err := s.prep(fmt.Sprintf("UPDATE %s SET parentId = ?", temp(elem)))
			if err != nil {
				return 0, err
			}
			if _, err := s.sql().ExecPrepared(repoint, relational.Int(dstParentID)); err != nil {
				return 0, err
			}
		}
	}

	// En-masse insert: a single statement per data relation, then cleanup.
	for _, elem := range subtree {
		tm := s.M.Table(elem)
		cols := "id, parentId"
		if dl := dataColumnList(tm, s.Opt.OrderColumn); dl != "" {
			cols += ", " + dl
		}
		if _, err := s.sql().Exec(fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s", tm.Name, cols, temp(elem))); err != nil {
			return 0, err
		}
		if _, err := s.sql().Exec("DROP TABLE " + temp(elem)); err != nil {
			return 0, err
		}
	}
	if s.ASR != nil {
		if err := s.insertASRPathsWithOffset(srcElem, where, offset, dstParentID, nil); err != nil {
			return roots, err
		}
	}
	return roots, nil
}

// parentWithin finds elem's parent among the subtree's tables.
func (s *Store) parentWithin(subtree []string, elem string) string {
	p := s.M.Table(elem).Parent
	for _, e := range subtree {
		if e == p {
			return e
		}
	}
	return subtree[0]
}

// asrInsert implements §6.2.3: mark the ASR paths through the source, use
// the marked ids to compute the offset and replicate tuples per relation
// with INSERT…SELECT, add new ASR paths, and unmark.
func (s *Store) asrInsert(srcElem, where string, dstParentID int64) (int, error) {
	if s.ASR == nil {
		return 0, fmt.Errorf("engine: ASR insert requires an ASR (set Options.Insert = ASRInsert at Open)")
	}
	tm := s.M.Table(srcElem)
	sql := fmt.Sprintf("SELECT id FROM %s", tm.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	rows, err := s.sql().Query(sql)
	if err != nil {
		return 0, err
	}
	if len(rows.Data) == 0 {
		return 0, nil
	}
	srcIDs := make([]int64, 0, len(rows.Data))
	for _, r := range rows.Data {
		srcIDs = append(srcIDs, r[0].MustInt())
	}
	if _, err := s.ASR.MarkSubtrees(s.sql(), srcElem, srcIDs); err != nil {
		return 0, err
	}

	// Scan the ASR for all subtree ids and compute the remapping offset.
	subtree := s.M.Descendants(srcElem)
	minID, maxID := int64(0), int64(0)
	firstAgg := true
	for _, elem := range subtree {
		lvl := s.ASR.LevelOf[elem]
		agg, err := s.sql().Query(fmt.Sprintf("SELECT MIN(%s), MAX(%s) FROM %s WHERE mark = 1",
			s.ASR.Col(lvl), s.ASR.Col(lvl), s.ASR.Name))
		if err != nil {
			return 0, err
		}
		lo, ok1 := agg.Data[0][0].Int()
		hi, ok2 := agg.Data[0][1].Int()
		if !ok1 || !ok2 {
			continue
		}
		if firstAgg || lo < minID {
			minID = lo
		}
		if firstAgg || hi > maxID {
			maxID = hi
		}
		firstAgg = false
	}
	if firstAgg {
		return 0, s.ASR.Unmark(s.sql())
	}
	offset := s.NextID() - minID
	s.AllocateIDs(maxID - minID + 1)

	// Replicate each relation's marked tuples with the offset applied.
	for _, elem := range subtree {
		etm := s.M.Table(elem)
		lvl := s.ASR.LevelOf[elem]
		exprs := []string{fmt.Sprintf("id + %d", offset), fmt.Sprintf("parentId + %d", offset)}
		cols := []string{"id", "parentId"}
		if s.Opt.OrderColumn {
			exprs = append(exprs, "pos")
			cols = append(cols, "pos")
		}
		for _, c := range etm.Columns {
			exprs = append(exprs, c.Name)
			cols = append(cols, c.Name)
		}
		sql := fmt.Sprintf("INSERT INTO %s (%s) SELECT %s FROM %s WHERE id IN (SELECT DISTINCT %s FROM %s WHERE mark = 1 AND %s IS NOT NULL)",
			etm.Name, strings.Join(cols, ", "), strings.Join(exprs, ", "), etm.Name,
			s.ASR.Col(lvl), s.ASR.Name, s.ASR.Col(lvl))
		if _, err := s.sql().Exec(sql); err != nil {
			return 0, err
		}
	}
	// Point the copied roots at the destination parent: one prepared UPDATE
	// probing the id index, instead of minting a fresh IN-list statement
	// shape per root count.
	repoint, err := s.prep(fmt.Sprintf("UPDATE %s SET parentId = ? WHERE id = ?", tm.Name))
	if err != nil {
		return 0, err
	}
	for _, id := range srcIDs {
		if _, err := s.sql().ExecPrepared(repoint, relational.Int(dstParentID), relational.Int(id+offset)); err != nil {
			return 0, err
		}
	}
	if err := s.insertASRPathsWithOffset(srcElem, "", offset, dstParentID, srcIDs); err != nil {
		return 0, err
	}
	if err := s.ASR.Unmark(s.sql()); err != nil {
		return 0, err
	}
	return len(srcIDs), nil
}

// insertASRPathsWithOffset adds paths for a copied subtree in one
// INSERT…SELECT over the marked rows: ancestor levels take the destination
// chain as constants, subtree levels are offset. When called from the table
// method (no marks), it first marks the source rows, then unmarks.
func (s *Store) insertASRPathsWithOffset(srcElem, where string, offset int64, dstParentID int64, srcIDs []int64) error {
	level := s.ASR.LevelOf[srcElem]
	needMark := srcIDs == nil
	if needMark {
		tm := s.M.Table(srcElem)
		sql := fmt.Sprintf("SELECT id FROM %s", tm.Name)
		if where != "" {
			sql += " WHERE " + where
		}
		rows, err := s.sql().Query(sql)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			srcIDs = append(srcIDs, r[0].MustInt())
		}
		if len(srcIDs) == 0 {
			return nil
		}
		if _, err := s.ASR.MarkSubtrees(s.sql(), srcElem, srcIDs); err != nil {
			return err
		}
	}
	var prefix []relational.Value
	if level > 0 {
		parentElem := s.M.Table(srcElem).Parent
		chain, err := s.chainIDs(parentElem, dstParentID)
		if err != nil {
			return err
		}
		prefix = chain
	}
	exprs := make([]string, s.ASR.Depth+1)
	for i := 0; i < s.ASR.Depth; i++ {
		switch {
		case i < level:
			exprs[i] = relational.FormatValue(prefix[i])
		default:
			exprs[i] = fmt.Sprintf("%s + %d", s.ASR.Col(i), offset)
		}
	}
	exprs[s.ASR.Depth] = "0"
	sql := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s WHERE mark = 1",
		s.ASR.Name, strings.Join(exprs, ", "), s.ASR.Name)
	if _, err := s.sql().Exec(sql); err != nil {
		return err
	}
	if needMark {
		return s.ASR.Unmark(s.sql())
	}
	return nil
}

// rebuildASRPathsFor maintains the ASR after a tuple-method insert using the
// id mapping built during the copy.
func (s *Store) rebuildASRPathsFor(srcElem string, idMap map[int64]int64, dstParentID int64) error {
	level := s.ASR.LevelOf[srcElem]
	var prefix []relational.Value
	if level > 0 {
		parentElem := s.M.Table(srcElem).Parent
		chain, err := s.chainIDs(parentElem, dstParentID)
		if err != nil {
			return err
		}
		prefix = chain
	}
	// Source paths: every ASR row whose level-id is an old source id (no
	// marks are set in the tuple method; gather paths directly).
	rows, err := s.sql().Query(fmt.Sprintf("SELECT * FROM %s", s.ASR.Name))
	if err != nil {
		return err
	}
	var newPaths [][]relational.Value
	for _, r := range rows.Data {
		idv, ok := r[level].Int()
		if !ok {
			continue
		}
		if _, copied := idMap[idv]; !copied {
			continue
		}
		np := make([]relational.Value, s.ASR.Depth)
		copy(np, prefix)
		for i := level; i < s.ASR.Depth; i++ {
			if old, ok := r[i].Int(); ok {
				if nid, ok := idMap[old]; ok {
					np[i] = relational.Int(nid)
				}
			}
		}
		newPaths = append(newPaths, np)
	}
	return s.ASR.InsertPaths(s.sql(), newPaths)
}

// InsertInlined performs a §6.2 "simple" (flat) insertion: the new element
// is completely inlined, so the operation is a single SQL UPDATE. Per the
// paper, a warning query first verifies that the target columns are NULL in
// every tuple being updated (the element may occur at most once).
func (s *Store) InsertInlined(tableElem string, path []string, text string, where string) (int, error) {
	c := s.M.FindColumn(tableElem, path, "")
	if c == nil {
		return 0, fmt.Errorf("engine: no inlined text column at %s/%s", tableElem, strings.Join(path, "/"))
	}
	tm := s.M.Table(tableElem)
	cond := c.Name + " IS NOT NULL"
	if where != "" {
		cond = "(" + where + ") AND " + cond
	}
	rows, err := s.sql().Query(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", tm.Name, cond))
	if err != nil {
		return 0, err
	}
	if rows.Data[0][0].MustInt() > 0 {
		return 0, fmt.Errorf("engine: insert over existing %s content (occurs at most once in the DTD)", strings.Join(path, "/"))
	}
	sql := fmt.Sprintf("UPDATE %s SET %s = ?", tm.Name, c.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	upd, err := s.DB.Prepare(sql)
	if err != nil {
		return 0, err
	}
	return s.sql().ExecPrepared(upd, relational.Text(text))
}

// InsertAttribute inserts an attribute value into matching tuples, failing
// if any tuple already has the attribute (§3.2).
func (s *Store) InsertAttribute(tableElem string, path []string, attr, value, where string) (int, error) {
	c := s.M.FindColumn(tableElem, path, attr)
	if c == nil {
		return 0, fmt.Errorf("engine: no column for attribute %q at %s/%s", attr, tableElem, strings.Join(path, "/"))
	}
	tm := s.M.Table(tableElem)
	cond := c.Name + " IS NOT NULL"
	if where != "" {
		cond = "(" + where + ") AND " + cond
	}
	rows, err := s.sql().Query(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", tm.Name, cond))
	if err != nil {
		return 0, err
	}
	if rows.Data[0][0].MustInt() > 0 {
		return 0, fmt.Errorf("engine: attribute %q already present on a target tuple", attr)
	}
	sql := fmt.Sprintf("UPDATE %s SET %s = ?", tm.Name, c.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	upd, err := s.DB.Prepare(sql)
	if err != nil {
		return 0, err
	}
	return s.sql().ExecPrepared(upd, relational.Text(value))
}

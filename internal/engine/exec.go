package engine

import (
	"fmt"
	"strings"

	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// ExecString parses and executes an XQuery update statement against the
// store, translating it to SQL. It returns the number of target tuples the
// update applied to.
func (s *Store) ExecString(q string) (int, error) {
	stmt, err := xquery.Parse(q)
	if err != nil {
		return 0, err
	}
	return s.Exec(stmt)
}

// Exec executes a parsed update statement using the paper's §6.3 algorithm:
// first all source and target bindings — including every sub-operation's —
// are computed over the unmodified database; then the sub-operations execute
// sequentially over the materialized bindings. This is what makes Example 8
// (an outer operation invalidating a nested selection) come out right.
func (s *Store) Exec(stmt *xquery.Statement) (int, error) {
	if stmt.IsQuery() {
		return 0, fmt.Errorf("engine: Exec handles updates; use QuerySubtrees for queries")
	}
	env := newSQLEnv(s)
	for _, fb := range stmt.For {
		env.defs[fb.Var] = fb.Path
	}
	if len(stmt.Let) > 0 {
		return 0, fmt.Errorf("engine: LET is not supported in relational translation")
	}
	for _, w := range stmt.Where {
		if err := env.applyWhere(w); err != nil {
			return 0, err
		}
	}

	target, err := env.resolve(stmt.Update.Binding)
	if err != nil {
		return 0, err
	}
	if len(target.Inlined) > 0 || target.Attr != "" {
		return 0, fmt.Errorf("engine: UPDATE target $%s must bind a table element", stmt.Update.Binding)
	}
	targetIDs, err := s.tupleIDs(target)
	if err != nil {
		return 0, err
	}

	// Binding phase for all sub-operations.
	plan, err := s.planOps(env, stmt.Update, target, targetIDs)
	if err != nil {
		return 0, err
	}
	// Execution phase — §6.3 plus atomicity: the sub-operations run inside
	// one transaction, so a failure discovered while executing (a unique
	// violation on the nth tuple, unsupported content found mid-plan)
	// rolls back every earlier sub-operation instead of stranding its
	// effects. Readers under the DB's shared lock never observe the
	// intermediate states.
	if err := s.atomically(func() error {
		for _, op := range plan {
			if err := op(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	return len(targetIDs), nil
}

// QuerySubtrees runs a FOR…RETURN query whose return variable binds a table
// element, via Sorted Outer Union, and returns the reconstructed subtrees.
func (s *Store) QuerySubtrees(stmt *xquery.Statement) ([]*xmltree.Element, error) {
	if !stmt.IsQuery() {
		return nil, fmt.Errorf("engine: QuerySubtrees requires a RETURN statement")
	}
	env := newSQLEnv(s)
	for _, fb := range stmt.For {
		env.defs[fb.Var] = fb.Path
	}
	for _, w := range stmt.Where {
		if err := env.applyWhere(w); err != nil {
			return nil, err
		}
	}
	if stmt.Return.Var == "" || (stmt.Return.Path != nil && len(stmt.Return.Path.Steps) > 0) {
		return nil, fmt.Errorf("engine: RETURN must be a bare variable")
	}
	target, err := env.resolve(stmt.Return.Var)
	if err != nil {
		return nil, err
	}
	if len(target.Inlined) > 0 || target.Attr != "" {
		return nil, fmt.Errorf("engine: RETURN variable must bind a table element")
	}
	where := target.Where
	if where != "" {
		where = qualifyOuterUnion(where)
	}
	subs, err := outerunion.Query(s.DB, s.M, target.Elem, where)
	if err != nil {
		return nil, err
	}
	out := make([]*xmltree.Element, len(subs))
	for i, st := range subs {
		out[i] = st.Root
	}
	return out, nil
}

// qualifyOuterUnion prefixes bare column references in a generated condition
// with the outer union's target alias T. Conditions produced by the
// translator reference only the target table's columns and id.
func qualifyOuterUnion(cond string) string {
	// The generated conditions use unqualified identifiers; the outer union
	// base query aliases the target table as T, and our SQL resolves
	// unqualified names against it unambiguously, so no rewriting is
	// needed. The hook exists for clarity.
	return cond
}

// sqlEnv resolves statement variables to relational path targets.
type sqlEnv struct {
	s     *Store
	defs  map[string]xquery.VarPath
	extra map[string][]string // var → additional SQL conditions from WHERE
}

func newSQLEnv(s *Store) *sqlEnv {
	return &sqlEnv{s: s, defs: make(map[string]xquery.VarPath), extra: make(map[string][]string)}
}

func (e *sqlEnv) resolve(v string) (*pathTarget, error) {
	return e.resolveGuarded(v, make(map[string]bool))
}

func (e *sqlEnv) resolveGuarded(v string, visiting map[string]bool) (*pathTarget, error) {
	if visiting[v] {
		return nil, fmt.Errorf("engine: circular variable reference $%s", v)
	}
	visiting[v] = true
	defer delete(visiting, v)
	def, ok := e.defs[v]
	if !ok {
		return nil, fmt.Errorf("engine: unbound variable $%s", v)
	}
	var t *pathTarget
	var err error
	if def.Var == "" {
		t, err = e.s.translateAbsPath(def.Path)
	} else {
		base, berr := e.resolveGuarded(def.Var, visiting)
		if berr != nil {
			return nil, berr
		}
		if len(base.Inlined) > 0 || base.Attr != "" {
			return nil, fmt.Errorf("engine: $%s is not an element binding", def.Var)
		}
		if def.Path == nil {
			cp := *base
			t = &cp
		} else {
			t, err = e.s.translateSteps(base.Elem, base.Where, def.Path.Steps)
		}
	}
	if err != nil {
		return nil, err
	}
	for _, c := range e.extra[v] {
		t.Where = andWhere(t.Where, c)
	}
	return t, nil
}

// applyWhere turns a WHERE predicate into a SQL condition attached to the
// variable it references.
func (e *sqlEnv) applyWhere(w xquery.WhereExpr) error {
	switch x := w.(type) {
	case xquery.BoolOp:
		if x.Op != "and" {
			return fmt.Errorf("engine: WHERE supports conjunctions only in relational translation")
		}
		if err := e.applyWhere(x.L); err != nil {
			return err
		}
		return e.applyWhere(x.R)
	case xquery.Comparison:
		switch l := x.L.(type) {
		case xquery.IndexVal:
			if !e.s.Opt.OrderColumn {
				return fmt.Errorf("engine: index() requires Options.OrderColumn (order-preserving storage, §8)")
			}
			n, ok := x.R.(xquery.NumberVal)
			if !ok {
				return fmt.Errorf("engine: index() comparisons take a number")
			}
			e.extra[l.Var] = append(e.extra[l.Var], fmt.Sprintf("pos %s %d", x.Op, n.Value))
			return nil
		case xquery.PathVal:
			if l.Path.Var == "" {
				return fmt.Errorf("engine: WHERE paths must be variable-rooted")
			}
			t, err := e.resolve(l.Path.Var)
			if err != nil {
				return err
			}
			lit, err := whereLiteral(x.R)
			if err != nil {
				return err
			}
			var rel *xpath.Path
			if l.Path.Path != nil {
				rel = l.Path.Path
			} else {
				rel = &xpath.Path{}
			}
			cond, err := e.s.pathCondition(t.Elem, t.Inlined, rel, x.Op, lit)
			if err != nil {
				return err
			}
			e.extra[l.Path.Var] = append(e.extra[l.Path.Var], cond)
			return nil
		default:
			return fmt.Errorf("engine: unsupported WHERE left side %T", x.L)
		}
	case xquery.ExistsExpr:
		if x.Path.Var == "" {
			return fmt.Errorf("engine: WHERE paths must be variable-rooted")
		}
		t, err := e.resolve(x.Path.Var)
		if err != nil {
			return err
		}
		cond, err := e.s.pathCondition(t.Elem, t.Inlined, x.Path.Path, "", "")
		if err != nil {
			return err
		}
		e.extra[x.Path.Var] = append(e.extra[x.Path.Var], cond)
		return nil
	default:
		return fmt.Errorf("engine: unsupported WHERE predicate %T", w)
	}
}

func whereLiteral(v xquery.ValExpr) (string, error) {
	switch x := v.(type) {
	case xquery.StringVal:
		return relational.FormatValue(relational.Text(x.Value)), nil
	case xquery.NumberVal:
		return fmt.Sprint(x.Value), nil
	default:
		return "", fmt.Errorf("engine: WHERE comparison right side must be a literal")
	}
}

// tupleIDs materializes the ids selected by a target.
func (s *Store) tupleIDs(t *pathTarget) ([]int64, error) {
	tm := s.M.Table(t.Elem)
	sql := fmt.Sprintf("SELECT id FROM %s", tm.Name)
	if t.Where != "" {
		sql += " WHERE " + t.Where
	}
	rows, err := s.sql().Query(sql)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(rows.Data))
	for _, r := range rows.Data {
		out = append(out, r[0].MustInt())
	}
	return out, nil
}

func idListSQL(ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ", ")
}

// plannedOp is a fully bound sub-operation ready to execute.
type plannedOp func() error

// planOps binds an UPDATE clause's sub-operations against the already
// materialized target ids, recursively pre-binding nested updates.
func (s *Store) planOps(env *sqlEnv, up *xquery.UpdateOp, target *pathTarget, targetIDs []int64) ([]plannedOp, error) {
	if len(targetIDs) == 0 {
		return nil, nil
	}
	inTargets := fmt.Sprintf("id IN (%s)", idListSQL(targetIDs))
	var plan []plannedOp
	for _, so := range up.Ops {
		switch o := so.(type) {
		case xquery.DeleteOp:
			child, err := env.resolve(o.Child)
			if err != nil {
				return nil, err
			}
			p, err := s.planDelete(target, child, inTargets)
			if err != nil {
				return nil, err
			}
			plan = append(plan, p)
		case xquery.RenameOp:
			child, err := env.resolve(o.Child)
			if err != nil {
				return nil, err
			}
			if len(child.Inlined) == 0 && child.Attr == "" {
				return nil, fmt.Errorf("engine: RENAME of a table element is not supported relationally")
			}
			newName := o.Name
			p := func() error {
				if child.Attr != "" {
					// Attribute rename: move the column value.
					oldCol := s.M.FindColumn(child.Elem, child.Inlined, child.Attr)
					newCol := s.M.FindColumn(child.Elem, child.Inlined, newName)
					if oldCol == nil || newCol == nil {
						return fmt.Errorf("engine: rename requires both %q and %q declared", child.Attr, newName)
					}
					tm := s.M.Table(child.Elem)
					_, err := s.sql().Exec(fmt.Sprintf("UPDATE %s SET %s = %s, %s = NULL WHERE %s",
						tm.Name, newCol.Name, oldCol.Name, oldCol.Name, andWhere(child.Where, inTargets)))
					return err
				}
				_, err := s.RenameInlined(child.Elem, child.Inlined, newName, andWhere(child.Where, inTargets))
				return err
			}
			plan = append(plan, p)
		case xquery.InsertOp:
			p, err := s.planInsert(env, o, target, targetIDs, inTargets)
			if err != nil {
				return nil, err
			}
			plan = append(plan, p)
		case xquery.ReplaceOp:
			child, err := env.resolve(o.Child)
			if err != nil {
				return nil, err
			}
			p, err := s.planReplace(o, target, child, inTargets)
			if err != nil {
				return nil, err
			}
			plan = append(plan, p)
		case xquery.NestedUpdate:
			// Bind the nested scope now, over the unmodified database.
			nestedEnv := newSQLEnv(s)
			for k, v := range env.defs {
				nestedEnv.defs[k] = v
			}
			for k, v := range env.extra {
				nestedEnv.extra[k] = v
			}
			for _, fb := range o.For {
				nestedEnv.defs[fb.Var] = fb.Path
			}
			for _, w := range o.Where {
				if err := nestedEnv.applyWhere(w); err != nil {
					return nil, err
				}
			}
			nt, err := nestedEnv.resolve(o.Update.Binding)
			if err != nil {
				return nil, err
			}
			if len(nt.Inlined) > 0 || nt.Attr != "" {
				return nil, fmt.Errorf("engine: UPDATE target $%s must bind a table element", o.Update.Binding)
			}
			// Constrain nested targets to descendants of the outer targets:
			// the chain is already encoded in nt.Where through variable
			// composition; materialize ids now.
			ntIDs, err := s.tupleIDs(nt)
			if err != nil {
				return nil, err
			}
			nestedPlan, err := s.planOps(nestedEnv, o.Update, nt, ntIDs)
			if err != nil {
				return nil, err
			}
			plan = append(plan, nestedPlan...)
		default:
			return nil, fmt.Errorf("engine: unsupported sub-operation %T", so)
		}
	}
	return plan, nil
}

func (s *Store) planDelete(target, child *pathTarget, inTargets string) (plannedOp, error) {
	switch {
	case child.Attr != "":
		where := andWhere(child.Where, constrainTo(s, target, child, inTargets))
		return func() error {
			_, err := s.DeleteAttribute(child.Elem, child.Inlined, child.Attr, where)
			return err
		}, nil
	case len(child.Inlined) > 0:
		where := andWhere(child.Where, constrainTo(s, target, child, inTargets))
		return func() error {
			_, err := s.DeleteInlined(child.Elem, child.Inlined, where)
			return err
		}, nil
	default:
		// Complex delete: pre-bind the child subtree roots now.
		ids, err := s.tupleIDs(&pathTarget{Elem: child.Elem, Where: andWhere(child.Where, constrainTo(s, target, child, inTargets))})
		if err != nil {
			return nil, err
		}
		return func() error {
			if len(ids) == 0 {
				return nil
			}
			_, err := s.DeleteSubtrees(child.Elem, fmt.Sprintf("id IN (%s)", idListSQL(ids)))
			return err
		}, nil
	}
}

// constrainTo restricts a child target's condition to the materialized outer
// target tuples. When the child resolves to the same table element as the
// target, the id-list applies directly; when it is a child table, the
// constraint follows parentId.
func constrainTo(s *Store, target, child *pathTarget, inTargets string) string {
	if child.Elem == target.Elem {
		return inTargets
	}
	// Find the linking chain child.Elem → target.Elem.
	cond := inTargets
	chain := s.M.ParentChain(child.Elem)
	// Walk upward from child to target, nesting parentId IN (…).
	idx := -1
	for i, e := range chain {
		if e == target.Elem {
			idx = i
			break
		}
	}
	if idx < 0 {
		return inTargets // unrelated; best effort
	}
	for i := len(chain) - 1; i > idx; i-- {
		ptm := s.M.Table(chain[i-1])
		cond = fmt.Sprintf("parentId IN (SELECT id FROM %s WHERE %s)", ptm.Name, cond)
	}
	return cond
}

func (s *Store) planInsert(env *sqlEnv, o xquery.InsertOp, target *pathTarget, targetIDs []int64, inTargets string) (plannedOp, error) {
	switch c := o.Content.(type) {
	case xquery.NewAttributeExpr:
		if o.Position != "" {
			return nil, fmt.Errorf("engine: attributes are unordered; positional insert is invalid")
		}
		return func() error {
			_, err := s.InsertAttribute(target.Elem, nil, c.Name, c.Value, inTargets)
			return err
		}, nil
	case xquery.NewRefExpr:
		// IDREFS columns store the space-separated list; appending a
		// reference is a per-tuple string update.
		col := s.M.FindColumn(target.Elem, nil, c.Name)
		if col == nil {
			return nil, fmt.Errorf("engine: no reference column %q on %s", c.Name, target.Elem)
		}
		tm := s.M.Table(target.Elem)
		ids := append([]int64(nil), targetIDs...)
		// Prepared once at planning time, probed per target id.
		sel, err := s.DB.Prepare(fmt.Sprintf("SELECT %s FROM %s WHERE id = ?", col.Name, tm.Name))
		if err != nil {
			return nil, err
		}
		upd, err := s.DB.Prepare(fmt.Sprintf("UPDATE %s SET %s = ? WHERE id = ?", tm.Name, col.Name))
		if err != nil {
			return nil, err
		}
		return func() error {
			for _, id := range ids {
				rows, err := s.sql().QueryPrepared(sel, relational.Int(id))
				if err != nil {
					return err
				}
				cur := ""
				if len(rows.Data) == 1 {
					if sv, ok := rows.Data[0][0].Text(); ok {
						cur = sv
					}
				}
				nv := c.ID
				if cur != "" {
					nv = cur + " " + c.ID
				}
				if _, err := s.sql().ExecPrepared(upd, relational.Text(nv), relational.Int(id)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case xquery.ElementLiteral:
		doc, err := xmltree.ParseWith(c.XML, xmltree.ParseOptions{TrimText: true, DTD: s.M.DTD})
		if err != nil {
			return nil, fmt.Errorf("engine: element literal: %w", err)
		}
		content := doc.Root
		if s.M.Table(content.Name) == nil {
			// Simple (inlined) insertion.
			if o.Position != "" {
				return nil, fmt.Errorf("engine: inlined content has no stored order")
			}
			text := content.TextContent()
			return func() error {
				_, err := s.InsertInlined(target.Elem, []string{content.Name}, text, inTargets)
				return err
			}, nil
		}
		// Complex insertion of a new subtree under every target tuple.
		if o.Position == "" {
			ids := append([]int64(nil), targetIDs...)
			return func() error {
				for _, id := range ids {
					pos := 0
					if s.Opt.OrderColumn {
						p, err := s.nextPos(target.Elem, id)
						if err != nil {
							return err
						}
						pos = p
					}
					if _, err := s.InsertContentAt(id, content, pos); err != nil {
						return err
					}
				}
				return nil
			}, nil
		}
		// Positional insertion: requires order-preserving storage; the ref
		// variable must bind tuples of a child table. Bind ref positions
		// now.
		if !s.Opt.OrderColumn {
			return nil, fmt.Errorf("engine: INSERT BEFORE/AFTER requires Options.OrderColumn (order-preserving storage, §8)")
		}
		ref, err := env.resolve(o.Ref)
		if err != nil {
			return nil, err
		}
		if len(ref.Inlined) > 0 || ref.Attr != "" {
			return nil, fmt.Errorf("engine: positional reference must bind a table element")
		}
		rtm := s.M.Table(ref.Elem)
		sql := fmt.Sprintf("SELECT parentId, pos FROM %s", rtm.Name)
		w := andWhere(ref.Where, constrainTo(s, target, ref, inTargets))
		if w != "" {
			sql += " WHERE " + w
		}
		rows, err := s.sql().Query(sql)
		if err != nil {
			return nil, err
		}
		type slot struct {
			parent int64
			pos    int64
		}
		var slots []slot
		for _, r := range rows.Data {
			pid, _ := r[0].Int()
			pos, _ := r[1].Int()
			if o.Position == "after" {
				pos++
			}
			slots = append(slots, slot{pid, pos})
		}
		return func() error {
			for _, sl := range slots {
				// Push existing positions forward to make room (§8).
				if _, err := s.sql().Exec(fmt.Sprintf("UPDATE %s SET pos = pos + 1 WHERE parentId = %d AND pos >= %d",
					rtm.Name, sl.parent, sl.pos)); err != nil {
					return err
				}
				if _, err := s.InsertContentAt(sl.parent, content, int(sl.pos)); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case xquery.StringContent, xquery.VarContent:
		return nil, fmt.Errorf("engine: %T content requires the DOM engine (reference-list order is not stored relationally)", c)
	default:
		return nil, fmt.Errorf("engine: unsupported content %T", c)
	}
}

// nextPos returns one past the maximum child position under a parent tuple.
func (s *Store) nextPos(parentElem string, parentID int64) (int, error) {
	max := 0
	for _, ce := range s.M.Table(parentElem).ChildTables {
		ctm := s.M.Table(ce)
		rows, err := s.sql().Query(fmt.Sprintf("SELECT MAX(pos) FROM %s WHERE parentId = %d", ctm.Name, parentID))
		if err != nil {
			return 0, err
		}
		if v, ok := rows.Data[0][0].Int(); ok && int(v) >= max {
			max = int(v) + 1
		}
	}
	return max, nil
}

func (s *Store) planReplace(o xquery.ReplaceOp, target, child *pathTarget, inTargets string) (plannedOp, error) {
	lit, ok := o.Content.(xquery.ElementLiteral)
	if !ok {
		if na, ok := o.Content.(xquery.NewAttributeExpr); ok {
			// Attribute (or reference) replacement: a column overwrite.
			col := s.columnFor(child)
			if col == nil {
				col = s.M.FindColumn(child.Elem, child.Inlined, na.Name)
			}
			if col == nil {
				return nil, fmt.Errorf("engine: no column for replaced attribute")
			}
			where := andWhere(child.Where, constrainTo(s, target, child, inTargets))
			tm := s.M.Table(child.Elem)
			return func() error {
				sql := fmt.Sprintf("UPDATE %s SET %s = %s", tm.Name, col.Name, relational.FormatValue(relational.Text(na.Value)))
				if where != "" {
					sql += " WHERE " + where
				}
				_, err := s.sql().Exec(sql)
				return err
			}, nil
		}
		return nil, fmt.Errorf("engine: REPLACE supports element literals and new_attribute")
	}
	doc, err := xmltree.ParseWith(lit.XML, xmltree.ParseOptions{TrimText: true, DTD: s.M.DTD})
	if err != nil {
		return nil, fmt.Errorf("engine: element literal: %w", err)
	}
	content := doc.Root
	switch {
	case child.Attr != "":
		return nil, fmt.Errorf("engine: cannot replace an attribute with an element")
	case len(child.Inlined) > 0:
		// Inlined replace: overwrite the text column (rename via literal tag
		// change is not inferred — the column set must match).
		col := s.M.FindColumn(child.Elem, child.Inlined, "")
		newCol := col
		if content.Name != child.Inlined[len(child.Inlined)-1] {
			alt := append(append([]string(nil), child.Inlined[:len(child.Inlined)-1]...), content.Name)
			newCol = s.M.FindColumn(child.Elem, alt, "")
		}
		if col == nil || newCol == nil {
			return nil, fmt.Errorf("engine: inlined replace requires declared columns for both tags")
		}
		where := andWhere(child.Where, constrainTo(s, target, child, inTargets))
		tm := s.M.Table(child.Elem)
		text := content.TextContent()
		return func() error {
			sets := fmt.Sprintf("%s = %s", newCol.Name, relational.FormatValue(relational.Text(text)))
			if newCol != col {
				sets += fmt.Sprintf(", %s = NULL", col.Name)
			}
			sql := fmt.Sprintf("UPDATE %s SET %s", tm.Name, sets)
			if where != "" {
				sql += " WHERE " + where
			}
			_, err := s.sql().Exec(sql)
			return err
		}, nil
	default:
		// Complex replace: pre-bind child subtree roots, then insert+delete.
		where := andWhere(child.Where, constrainTo(s, target, child, inTargets))
		ids, err := s.tupleIDs(&pathTarget{Elem: child.Elem, Where: where})
		if err != nil {
			return nil, err
		}
		return func() error {
			if len(ids) == 0 {
				return nil
			}
			_, err := s.ReplaceSubtrees(child.Elem, fmt.Sprintf("id IN (%s)", idListSQL(ids)), content)
			return err
		}, nil
	}
}

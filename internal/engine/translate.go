package engine

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xpath"
)

// pathTarget is the relational resolution of a path expression: the table
// element it lands on (with an accumulated SQL condition over that table),
// or an inlined item within a table.
type pathTarget struct {
	// Elem is the table element the path reaches.
	Elem string
	// Where is the SQL condition over Elem's table selecting the matched
	// tuples (unqualified column names), "" when unconstrained.
	Where string
	// Inlined is the remaining path inside the tuple ("" when the path
	// ends exactly at the table element). Attr is set when the final step
	// was an attribute step.
	Inlined []string
	Attr    string
}

func andWhere(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return "(" + a + ") AND (" + b + ")"
	}
}

// translateAbsPath resolves an absolute (or document()-prefixed) path to a
// relational target. Supported steps: child steps from the root, one leading
// descendant step (resolved to the unique table element of that name),
// attribute steps, and predicates translatable by translatePred.
func (s *Store) translateAbsPath(p *xpath.Path) (*pathTarget, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("engine: empty path")
	}
	var cur string
	var where string
	start := 0
	switch p.Steps[0].Kind {
	case xpath.ChildStep:
		if p.Steps[0].Name != s.M.Root && p.Steps[0].Name != "*" {
			return nil, fmt.Errorf("engine: path must start at root element %q, got %q", s.M.Root, p.Steps[0].Name)
		}
		cur = s.M.Root
		w, err := s.translatePreds(cur, nil, p.Steps[0].Preds)
		if err != nil {
			return nil, err
		}
		where = w
		start = 1
	case xpath.DescendantStep:
		// //Order: the named element must map to exactly one table.
		name := p.Steps[0].Name
		if s.M.Table(name) == nil {
			return nil, fmt.Errorf("engine: //%s does not name a table element", name)
		}
		cur = name
		w, err := s.translatePreds(cur, nil, p.Steps[0].Preds)
		if err != nil {
			return nil, err
		}
		where = w
		start = 1
	default:
		return nil, fmt.Errorf("engine: unsupported leading step %v", p.Steps[0].Kind)
	}
	return s.translateSteps(cur, where, p.Steps[start:])
}

// translateRelPath resolves a path relative to a table element.
func (s *Store) translateRelPath(fromElem string, p *xpath.Path) (*pathTarget, error) {
	if p == nil {
		return &pathTarget{Elem: fromElem}, nil
	}
	return s.translateSteps(fromElem, "", p.Steps)
}

// translateSteps walks child/attribute steps from a table element,
// descending through child tables and into the inlined region.
func (s *Store) translateSteps(cur, where string, steps []*xpath.Step) (*pathTarget, error) {
	var inlined []string
	for si, st := range steps {
		switch st.Kind {
		case xpath.ChildStep:
			if len(inlined) == 0 && s.isChildTable(cur, st.Name) {
				// Descend to the child table: the accumulated parent
				// condition becomes a parentId IN (…) condition.
				parentCond := ""
				if where != "" {
					ptm := s.M.Table(cur)
					parentCond = fmt.Sprintf("parentId IN (SELECT id FROM %s WHERE %s)", ptm.Name, where)
				}
				cur = st.Name
				where = parentCond
				w, err := s.translatePreds(cur, nil, st.Preds)
				if err != nil {
					return nil, err
				}
				where = andWhere(where, w)
				continue
			}
			// Inlined step.
			inlined = append(inlined, st.Name)
			if len(st.Preds) > 0 {
				w, err := s.translatePreds(cur, inlined, st.Preds)
				if err != nil {
					return nil, err
				}
				where = andWhere(where, w)
			}
		case xpath.AttrStep:
			if si != len(steps)-1 {
				return nil, fmt.Errorf("engine: attribute step must be last")
			}
			return &pathTarget{Elem: cur, Where: where, Inlined: inlined, Attr: st.Name}, nil
		case xpath.DescendantStep:
			return nil, fmt.Errorf("engine: descendant step is only supported as the leading step")
		default:
			return nil, fmt.Errorf("engine: unsupported step kind %v in relational translation", st.Kind)
		}
	}
	return &pathTarget{Elem: cur, Where: where, Inlined: inlined}, nil
}

func (s *Store) isChildTable(parentElem, name string) bool {
	tm := s.M.Table(parentElem)
	if tm == nil {
		return false
	}
	for _, c := range tm.ChildTables {
		if c == name {
			return true
		}
	}
	return false
}

// translatePreds converts step predicates into a SQL condition over the
// table element's tuples, at the given inlined offset.
func (s *Store) translatePreds(elem string, inlined []string, preds []xpath.Expr) (string, error) {
	var conds []string
	for _, p := range preds {
		c, err := s.translatePred(elem, inlined, p)
		if err != nil {
			return "", err
		}
		conds = append(conds, c)
	}
	return strings.Join(conds, " AND "), nil
}

func (s *Store) translatePred(elem string, inlined []string, e xpath.Expr) (string, error) {
	switch x := e.(type) {
	case *xpath.BinaryExpr:
		switch x.Op {
		case "and", "or":
			l, err := s.translatePred(elem, inlined, x.L)
			if err != nil {
				return "", err
			}
			r, err := s.translatePred(elem, inlined, x.R)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(%s %s %s)", l, strings.ToUpper(x.Op), r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			pe, ok := x.L.(*xpath.PathExpr)
			if !ok {
				return "", fmt.Errorf("engine: comparison left side must be a path")
			}
			lit, err := literalSQL(x.R)
			if err != nil {
				return "", err
			}
			return s.pathCondition(elem, inlined, pe.Path, x.Op, lit)
		default:
			return "", fmt.Errorf("engine: unsupported predicate operator %q", x.Op)
		}
	case *xpath.PathExpr:
		// Existence predicate.
		return s.pathCondition(elem, inlined, x.Path, "", "")
	case *xpath.IndexCall:
		return "", fmt.Errorf("engine: index() is not supported in relational translation (order is not stored; see Options.OrderColumn)")
	default:
		return "", fmt.Errorf("engine: unsupported predicate %T", e)
	}
}

func literalSQL(e xpath.Expr) (string, error) {
	switch v := e.(type) {
	case *xpath.StringLit:
		return relational.FormatValue(relational.Text(v.Value)), nil
	case *xpath.NumberLit:
		return fmt.Sprint(v.Value), nil
	default:
		return "", fmt.Errorf("engine: comparison right side must be a literal")
	}
}

// pathCondition builds the SQL condition for `relpath op literal` (or bare
// existence when op == "") evaluated at (elem, inlined).
func (s *Store) pathCondition(elem string, inlined []string, rel *xpath.Path, op, lit string) (string, error) {
	// Walk the relative path: attribute step or element steps, which may
	// stay inlined or cross into a child table.
	curInlined := append([]string(nil), inlined...)
	curElem := elem
	crossed := false
	var childCond string
	for si, st := range rel.Steps {
		switch st.Kind {
		case xpath.AttrStep:
			if si != len(rel.Steps)-1 {
				return "", fmt.Errorf("engine: attribute step must be last in predicate path")
			}
			c := s.M.FindColumn(curElem, curInlined, st.Name)
			if c == nil {
				return "", fmt.Errorf("engine: no column for @%s at %s/%s", st.Name, curElem, strings.Join(curInlined, "/"))
			}
			cond := columnCondition(c.Name, op, lit)
			return s.wrapChild(elem, curElem, cond, crossed, childCond)
		case xpath.ChildStep:
			if len(st.Preds) > 0 {
				return "", fmt.Errorf("engine: nested predicates in predicate paths are not supported")
			}
			if !crossed && len(curInlined) == 0 && s.isChildTable(curElem, st.Name) {
				crossed = true
				curElem = st.Name
				continue
			}
			if crossed && s.isChildTable(curElem, st.Name) && len(curInlined) == 0 {
				return "", fmt.Errorf("engine: predicate paths may cross at most one table boundary")
			}
			curInlined = append(curInlined, st.Name)
		default:
			return "", fmt.Errorf("engine: unsupported step in predicate path")
		}
	}
	// Path ends on an element: compare its text column (or existence).
	c := s.M.FindColumn(curElem, curInlined, "")
	if c == nil {
		// Perhaps the element has no text but a flag (existence check).
		if op == "" {
			if f := s.M.FlagColumnFor(curElem, curInlined); f != nil {
				return s.wrapChild(elem, curElem, f.Name+" IS NOT NULL", crossed, childCond)
			}
			// A child-table existence check.
			if crossed || s.isChildTable(curElem, "") {
				return "", fmt.Errorf("engine: unsupported existence predicate at %s/%s", curElem, strings.Join(curInlined, "/"))
			}
		}
		return "", fmt.Errorf("engine: no text column at %s/%s", curElem, strings.Join(curInlined, "/"))
	}
	cond := columnCondition(c.Name, op, lit)
	return s.wrapChild(elem, curElem, cond, crossed, childCond)
}

// wrapChild rewrites a condition evaluated on a child table into a condition
// on the outer table: id IN (SELECT parentId FROM Child WHERE …).
func (s *Store) wrapChild(outerElem, condElem, cond string, crossed bool, _ string) (string, error) {
	if !crossed {
		return cond, nil
	}
	ctm := s.M.Table(condElem)
	return fmt.Sprintf("id IN (SELECT parentId FROM %s WHERE %s)", ctm.Name, cond), nil
}

func columnCondition(col, op, lit string) string {
	if op == "" {
		return col + " IS NOT NULL"
	}
	return fmt.Sprintf("%s %s %s", col, op, lit)
}

// columnFor resolves a pathTarget to its column map when it names an inlined
// item.
func (s *Store) columnFor(t *pathTarget) *shred.ColumnMap {
	if t.Attr != "" {
		return s.M.FindColumn(t.Elem, t.Inlined, t.Attr)
	}
	if len(t.Inlined) > 0 {
		return s.M.FindColumn(t.Elem, t.Inlined, "")
	}
	return nil
}

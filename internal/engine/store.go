// Package engine assembles the paper's contribution over the relational
// substrate: an XML store backed by Shared Inlining tables, the four
// subtree-delete strategies and three subtree-insert strategies of §6, and a
// translator executing XQuery update statements at the SQL level with the
// §6.3 bind-first multilevel algorithm.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asr"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// DeleteMethod selects the §6.1 strategy for complex (multi-table) deletes.
type DeleteMethod int

// Delete strategies.
const (
	// PerTupleTrigger installs AFTER DELETE … FOR EACH ROW triggers that
	// delete child tuples by parentId index lookup (§6.1.1).
	PerTupleTrigger DeleteMethod = iota
	// PerStatementTrigger installs AFTER DELETE … FOR EACH STATEMENT
	// triggers that purge orphans via NOT IN scans (§6.1.1).
	PerStatementTrigger
	// CascadingDelete issues the orphan-purging statements from the
	// application, simulating per-statement triggers without DBMS support
	// (§6.1.2).
	CascadingDelete
	// ASRDelete uses the access support relation's marking scheme (§6.1.3).
	ASRDelete
)

func (m DeleteMethod) String() string {
	switch m {
	case PerTupleTrigger:
		return "per-tuple trigger"
	case PerStatementTrigger:
		return "per-stm trigger"
	case CascadingDelete:
		return "cascade"
	case ASRDelete:
		return "asr"
	default:
		return fmt.Sprintf("DeleteMethod(%d)", int(m))
	}
}

// InsertMethod selects the §6.2 strategy for complex (multi-table) inserts.
type InsertMethod int

// Insert strategies.
const (
	// TupleInsert reads the source via Sorted Outer Union one tuple at a
	// time, remapping ids through an in-memory table, and issues one SQL
	// INSERT per tuple (§6.2.1). Ids are allocated without gaps.
	TupleInsert InsertMethod = iota
	// TableInsert stages the source rows in temporary tables, remaps ids
	// with a single arithmetic offset, and issues one INSERT…SELECT per
	// data relation (§6.2.2).
	TableInsert
	// ASRInsert finds the source subtree through the ASR's marking scheme
	// and replicates tuples with INSERT…SELECT…+offset per relation,
	// avoiding both the temporary table and the Outer Union (§6.2.3).
	ASRInsert
)

func (m InsertMethod) String() string {
	switch m {
	case TupleInsert:
		return "tuple"
	case TableInsert:
		return "table"
	case ASRInsert:
		return "asr"
	default:
		return fmt.Sprintf("InsertMethod(%d)", int(m))
	}
}

// Options configures a Store.
type Options struct {
	Delete DeleteMethod
	Insert InsertMethod
	// OrderColumn stores tuple positions (the §8 order-preserving
	// extension).
	OrderColumn bool
	// Parallelism is the per-statement worker budget for query execution;
	// <= 1 means serial, the default.
	Parallelism int
}

// Store is an XML repository over the relational engine.
type Store struct {
	DB  *relational.DB
	M   *shred.Mapping
	ASR *asr.ASR
	Opt Options

	// nextID is the systemwide "next available id" counter of §6.2.2.
	nextID int64

	// preps caches prepared statements by SQL text. DB.Prepare bypasses the
	// DB's literal-lifting shape cache, so a per-call Prepare re-parses on
	// every invocation; the translations' fixed statement texts (tuple
	// inserts, subtree remaps, root repoints) parse once per Store instead.
	// Only bounded texts belong here — statements embedding caller-supplied
	// WHERE fragments would grow the map per distinct literal.
	preps map[string]*relational.Prepared

	// sess, when non-nil, is the transaction wrapping the current update's
	// execution phase (see atomically); sql() routes statements through it.
	// A Store supports one concurrent updater; readers (QuerySubtrees,
	// Reconstruct) are unlimited and run under the DB's shared lock.
	sess relational.Session

	// persistent marks a store opened from a directory (OpenDir): updates
	// that allocate tuple ids persist the advanced counter into the
	// metadata table inside the same transaction, so gapless allocation
	// survives restarts exactly as it survives rollbacks.
	persistent bool
}

// sql returns the session statements execute against: the transaction
// wrapping the current execution phase, or the DB in autocommit mode.
func (s *Store) sql() relational.Session {
	if s.sess != nil {
		return s.sess
	}
	return s.DB
}

// atomically runs fn inside one relational transaction unless one is
// already open, rolling back every statement's effects — and the
// next-available-id counter — when fn fails. This is what makes a §6.3
// multi-sub-operation update (and each multi-statement strategy: cascades,
// staged table inserts, ASR maintenance) all-or-nothing: sub-operation k
// failing no longer strands sub-operations 1..k-1's effects.
func (s *Store) atomically(fn func() error) error {
	if s.sess != nil {
		return fn()
	}
	tx := s.DB.Begin()
	s.sess = tx
	savedNext := s.nextID
	committed := false
	// Cleanup runs deferred so a panic inside fn still rolls back and
	// releases the writer lock — otherwise a recovered panic would leave
	// the whole store deadlocked behind a held transaction.
	defer func() {
		s.sess = nil
		if !committed {
			s.nextID = savedNext
			tx.Rollback()
		}
	}()
	if err := fn(); err != nil {
		return err
	}
	if s.persistent && s.nextID != savedNext {
		// Persist the advanced id counter inside the same transaction: the
		// commit record carries it, so recovery replays allocation exactly,
		// and a rollback discards it with everything else. Prepared via the
		// Store cache — this runs on every id-allocating update.
		p, err := s.prep(fmt.Sprintf("UPDATE %s SET v = ? WHERE k = 'nextid'", metaTable))
		if err != nil {
			return err
		}
		if _, err := tx.ExecPrepared(p, relational.Text(strconv.FormatInt(s.nextID, 10))); err != nil {
			return err
		}
	}
	committed = true
	return tx.Commit()
}

// prep returns the cached prepared statement for sql, parsing at most once
// per Store. Cached ASTs revalidate their compiled plans against the DB's
// schema version, so DDL between calls (the temp tables insertSubtree
// creates and drops) is safe.
func (s *Store) prep(sql string) (*relational.Prepared, error) {
	if p, ok := s.preps[sql]; ok {
		return p, nil
	}
	p, err := s.DB.Prepare(sql)
	if err != nil {
		return nil, err
	}
	if s.preps == nil {
		s.preps = make(map[string]*relational.Prepared)
	}
	s.preps[sql] = p
	return p, nil
}

// Open shreds the document into a fresh database under the DTD's Shared
// Inlining mapping and prepares the configured update strategies (trigger
// creation, ASR construction).
func Open(doc *xmltree.Document, opts Options) (*Store, error) {
	if doc.DTD == nil {
		return nil, fmt.Errorf("engine: document has no DTD; Shared Inlining requires one")
	}
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: opts.OrderColumn})
	if err != nil {
		return nil, err
	}
	db := relational.NewDB()
	db.SetParallelism(opts.Parallelism)
	ds, err := shred.Load(db, m, doc)
	if err != nil {
		return nil, err
	}
	s := &Store{DB: db, M: m, Opt: opts, nextID: ds.MaxID + 1}
	if err := s.setup(); err != nil {
		return nil, err
	}
	return s, nil
}

// setup installs triggers and builds the ASR according to the options.
func (s *Store) setup() error {
	switch s.Opt.Delete {
	case PerTupleTrigger:
		for _, elem := range s.M.TableOrder {
			tm := s.M.Table(elem)
			for _, childElem := range tm.ChildTables {
				child := s.M.Table(childElem)
				sql := fmt.Sprintf(
					"CREATE TRIGGER tr_row_%s_%s AFTER DELETE ON %s FOR EACH ROW DELETE FROM %s WHERE parentId = OLD.id",
					tm.Name, child.Name, tm.Name, child.Name)
				if _, err := s.sql().Exec(sql); err != nil {
					return err
				}
			}
		}
	case PerStatementTrigger:
		for _, elem := range s.M.TableOrder {
			tm := s.M.Table(elem)
			for _, childElem := range tm.ChildTables {
				child := s.M.Table(childElem)
				sql := fmt.Sprintf(
					"CREATE TRIGGER tr_stm_%s_%s AFTER DELETE ON %s FOR EACH STATEMENT DELETE FROM %s WHERE parentId NOT IN (SELECT id FROM %s)",
					tm.Name, child.Name, tm.Name, child.Name, tm.Name)
				if _, err := s.sql().Exec(sql); err != nil {
					return err
				}
			}
		}
	}
	if s.Opt.Delete == ASRDelete || s.Opt.Insert == ASRInsert {
		a, err := asr.Build(s.DB, s.M)
		if err != nil {
			return err
		}
		s.ASR = a
	}
	return nil
}

// Snapshot captures the store's state for fast reset between benchmark
// iterations.
type Snapshot struct {
	db     *relational.DBSnapshot
	nextID int64
}

// Snapshot captures table contents and the id counter.
func (s *Store) Snapshot() *Snapshot {
	return &Snapshot{db: s.DB.Snapshot(), nextID: s.nextID}
}

// Restore resets the store to a snapshot.
func (s *Store) Restore(snap *Snapshot) {
	s.DB.Restore(snap.db)
	s.nextID = snap.nextID
}

// AllocateIDs reserves n consecutive tuple ids and returns the first.
func (s *Store) AllocateIDs(n int64) int64 {
	first := s.nextID
	s.nextID += n
	return first
}

// NextID returns the systemwide next-available-id counter.
func (s *Store) NextID() int64 { return s.nextID }

// TupleCount sums live rows across data tables (excluding the ASR). It
// counts under the DB's shared lock, so it is safe against a concurrent
// writer (unlike reading through the Table escape hatch).
func (s *Store) TupleCount() int {
	n := 0
	for _, elem := range s.M.TableOrder {
		n += s.DB.RowCount(s.M.Table(elem).Name)
	}
	return n
}

// chainIDs returns the tuple-id chain from the root down to the tuple id of
// elem, by following parentId upwards (used for ASR path prefixes).
func (s *Store) chainIDs(elem string, id int64) ([]relational.Value, error) {
	chainElems := s.M.ParentChain(elem)
	out := make([]relational.Value, len(chainElems))
	cur := id
	for i := len(chainElems) - 1; i >= 0; i-- {
		out[i] = relational.Int(cur)
		if i == 0 {
			break
		}
		tm := s.M.Table(chainElems[i])
		rows, err := s.sql().Query(fmt.Sprintf("SELECT parentId FROM %s WHERE id = %d", tm.Name, cur))
		if err != nil {
			return nil, err
		}
		if len(rows.Data) != 1 {
			return nil, fmt.Errorf("engine: tuple %d not found in %s", cur, tm.Name)
		}
		pid, ok := rows.Data[0][0].Int()
		if !ok {
			return nil, fmt.Errorf("engine: tuple %d in %s has NULL parent", cur, tm.Name)
		}
		cur = pid
	}
	return out, nil
}

// dataColumnList returns the comma-separated data column names of a table
// (everything after id and parentId).
func dataColumnList(tm *shred.TableMap, withOrder bool) string {
	var cols []string
	if withOrder {
		cols = append(cols, "pos")
	}
	for _, c := range tm.Columns {
		cols = append(cols, c.Name)
	}
	return strings.Join(cols, ", ")
}

package engine

import (
	"fmt"
	"strings"

	"repro/internal/shred"
)

// DeleteSubtrees deletes every subtree rooted at tuples of elem matching the
// SQL condition (over elem's table, unqualified column names), using the
// store's configured delete method. It returns the number of root tuples
// deleted.
func (s *Store) DeleteSubtrees(elem string, where string) (int, error) {
	tm := s.M.Table(elem)
	if tm == nil {
		return 0, fmt.Errorf("engine: element %q has no table; use DeleteInlined for simple deletions", elem)
	}
	// Multi-statement strategies (cascades, ASR marking) run atomically: a
	// failure partway leaves neither half-purged orphans nor a stale ASR.
	var n int
	err := s.atomically(func() error {
		var err error
		n, err = s.deleteSubtrees(tm, elem, where)
		return err
	})
	return n, err
}

func (s *Store) deleteSubtrees(tm *shred.TableMap, elem, where string) (int, error) {
	switch s.Opt.Delete {
	case PerTupleTrigger, PerStatementTrigger:
		// One statement; triggers propagate inside the DBMS (§6.1.1).
		sql := fmt.Sprintf("DELETE FROM %s", tm.Name)
		if where != "" {
			sql += " WHERE " + where
		}
		n, err := s.sql().Exec(sql)
		if err != nil {
			return 0, err
		}
		if s.ASR != nil && n > 0 {
			// A store keeping an ASR must maintain it on every delete.
			if err := s.maintainASRAfterTriggerDelete(elem); err != nil {
				return n, err
			}
		}
		return n, nil
	case CascadingDelete:
		return s.cascadingDelete(tm.Element, where)
	case ASRDelete:
		return s.asrDelete(elem, where)
	default:
		return 0, fmt.Errorf("engine: unknown delete method %v", s.Opt.Delete)
	}
}

// cascadingDelete simulates per-statement triggers at the application level
// (§6.1.2): delete the parents, then repeatedly purge orphans from child
// relations, stopping as soon as a delete removes no tuples.
func (s *Store) cascadingDelete(elem, where string) (int, error) {
	tm := s.M.Table(elem)
	sql := fmt.Sprintf("DELETE FROM %s", tm.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	n, err := s.sql().Exec(sql)
	if err != nil {
		return 0, err
	}
	// Breadth-first orphan purge; a level whose delete removes nothing
	// stops its branch (the method works even on recursive schemas, where
	// the loop re-visits the same table until quiescent).
	frontier := []string{elem}
	for len(frontier) > 0 {
		var next []string
		for _, pe := range frontier {
			ptm := s.M.Table(pe)
			for _, ce := range ptm.ChildTables {
				ctm := s.M.Table(ce)
				removed, err := s.sql().Exec(fmt.Sprintf(
					"DELETE FROM %s WHERE parentId NOT IN (SELECT id FROM %s)", ctm.Name, ptm.Name))
				if err != nil {
					return n, err
				}
				if removed > 0 {
					next = append(next, ce)
				}
			}
		}
		frontier = next
	}
	if s.ASR != nil && n > 0 {
		if err := s.maintainASRAfterTriggerDelete(elem); err != nil {
			return n, err
		}
	}
	return n, nil
}

// asrDelete implements §6.1.3: find target ids, mark their ASR paths, delete
// matching tuples per level, then update the ASR.
func (s *Store) asrDelete(elem, where string) (int, error) {
	if s.ASR == nil {
		return 0, fmt.Errorf("engine: ASR delete requires an ASR (set Options.Delete = ASRDelete at Open)")
	}
	tm := s.M.Table(elem)
	sql := fmt.Sprintf("SELECT id FROM %s", tm.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	rows, err := s.sql().Query(sql)
	if err != nil {
		return 0, err
	}
	if len(rows.Data) == 0 {
		return 0, nil
	}
	ids := make([]int64, 0, len(rows.Data))
	for _, r := range rows.Data {
		ids = append(ids, r[0].MustInt())
	}
	if _, err := s.ASR.MarkSubtrees(s.sql(), elem, ids); err != nil {
		return 0, err
	}
	// Delete the targets and every descendant level: ids come from the
	// marked ASR rows (a single join of the deleted tuples with the ASR
	// yields the child ids below the delete point).
	level := s.ASR.LevelOf[elem]
	for _, de := range s.M.Descendants(elem) {
		dtm := s.M.Table(de)
		dl := s.ASR.LevelOf[de]
		if dl < level {
			continue
		}
		delSQL := fmt.Sprintf(
			"DELETE FROM %s WHERE id IN (SELECT DISTINCT %s FROM %s WHERE mark = 1 AND %s IS NOT NULL)",
			dtm.Name, s.ASR.Col(dl), s.ASR.Name, s.ASR.Col(dl))
		if _, err := s.sql().Exec(delSQL); err != nil {
			return 0, err
		}
	}
	if err := s.ASR.DeleteMarked(s.sql(), elem, ids); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// maintainASRAfterTriggerDelete reconciles the ASR after a delete performed
// outside the marking scheme: paths referring to vanished tuples are purged
// level by level.
func (s *Store) maintainASRAfterTriggerDelete(elem string) error {
	level := s.ASR.LevelOf[elem]
	tm := s.M.Table(elem)
	// Mark paths whose level-id no longer exists.
	mark := fmt.Sprintf("UPDATE %s SET mark = 1 WHERE %s IS NOT NULL AND %s NOT IN (SELECT id FROM %s)",
		s.ASR.Name, s.ASR.Col(level), s.ASR.Col(level), tm.Name)
	if _, err := s.sql().Exec(mark); err != nil {
		return err
	}
	return s.ASR.DeleteMarked(s.sql(), elem, nil)
}

// DeleteInlined performs a §6.1 "simple" deletion: the deleted element is
// inlined with an ancestor, so the delete is a single SQL UPDATE setting the
// element's columns (and those of its inlined descendants) to NULL. The
// where condition selects the owning tuples.
func (s *Store) DeleteInlined(tableElem string, path []string, where string) (int, error) {
	cols := s.M.ColumnsUnder(tableElem, path)
	if len(cols) == 0 {
		return 0, fmt.Errorf("engine: no inlined columns at %s/%s", tableElem, strings.Join(path, "/"))
	}
	tm := s.M.Table(tableElem)
	var sets []string
	for _, c := range cols {
		sets = append(sets, c.Name+" = NULL")
	}
	sql := fmt.Sprintf("UPDATE %s SET %s", tm.Name, strings.Join(sets, ", "))
	if where != "" {
		sql += " WHERE " + where
	}
	return s.sql().Exec(sql)
}

// DeleteAttribute removes an attribute (one column) from matching tuples.
func (s *Store) DeleteAttribute(tableElem string, path []string, attr, where string) (int, error) {
	c := s.M.FindColumn(tableElem, path, attr)
	if c == nil {
		return 0, fmt.Errorf("engine: no column for attribute %q at %s/%s", attr, tableElem, strings.Join(path, "/"))
	}
	tm := s.M.Table(tableElem)
	sql := fmt.Sprintf("UPDATE %s SET %s = NULL", tm.Name, c.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	return s.sql().Exec(sql)
}

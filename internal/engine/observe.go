package engine

import (
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/relational"
)

// Observability passthroughs. The store's relational substrate carries the
// instrumentation (EXPLAIN ANALYZE, query tracing, latency histograms);
// these forwarders let XML-level tooling reach it without holding a DB
// reference alongside the Store.

// ExplainAnalyze executes the SQL statement with per-operator
// instrumentation and returns the annotated plan tree.
func (s *Store) ExplainAnalyze(sql string) (string, error) { return s.DB.ExplainAnalyze(sql) }

// OnTrace registers fn to receive a QueryTrace span after every statement;
// the returned function unregisters it.
func (s *Store) OnTrace(fn func(*relational.QueryTrace)) func() { return s.DB.OnTrace(fn) }

// SetSlowQuery arms the slow-query log: statements slower than d enter the
// recent-statements ring. Zero disables the threshold.
func (s *Store) SetSlowQuery(d time.Duration) { s.DB.SetSlowQuery(d) }

// EnableTraceLog keeps the last n statement traces in a ring (n <= 0
// disables it).
func (s *Store) EnableTraceLog(n int) { s.DB.EnableTraceLog(n) }

// TraceLog returns the ring's contents, oldest first.
func (s *Store) TraceLog() []*relational.QueryTrace { return s.DB.TraceLog() }

// Metrics snapshots the engine's latency histograms and counters.
func (s *Store) Metrics() metrics.Snapshot { return s.DB.Metrics() }

// WriteMetrics dumps the metrics snapshot as one JSON object to w
// (expvar-compatible).
func (s *Store) WriteMetrics(w io.Writer) error { return s.DB.WriteMetrics(w) }

package engine

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relational"
	"repro/internal/xmltree"
)

// TestParallelStoreEquivalence opens the same generated document with and
// without a worker budget (Options.Parallelism) and runs retrieval plus an
// update through both stores: subtree streams and post-update table
// contents must be identical. This pins the Parallelism option plumbing
// (Open → SetParallelism) and the end-to-end determinism contract at the
// XML layer.
func TestParallelStoreEquivalence(t *testing.T) {
	open := func(par int) *Store {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 4, Depth: 4, Fanout: 4, Seed: 33})
		s, err := Open(doc, Options{OrderColumn: true, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := open(0)
	paral := open(4)
	render := func(elems []*xmltree.Element) string {
		var b strings.Builder
		for _, e := range elems {
			b.WriteString(xmltree.Serialize(e))
			b.WriteByte('\n')
		}
		return b.String()
	}
	stmt := mustParse(t, `
FOR $e IN document("x")/root/e1
RETURN $e`)
	want, err := serial.QuerySubtrees(stmt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := paral.QuerySubtrees(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no e2 subtrees")
	}
	if render(got) != render(want) {
		t.Error("parallel subtree stream diverges from serial")
	}
	del := mustParse(t, `
FOR $r IN document("x")/root,
    $e IN $r/e1[k1 > "5"]
UPDATE $r { DELETE $e }`)
	ns, err := serial.Exec(del)
	if err != nil {
		t.Fatal(err)
	}
	np, err := paral.Exec(del)
	if err != nil {
		t.Fatal(err)
	}
	if ns != np {
		t.Fatalf("delete affected %d serial, %d parallel", ns, np)
	}
	for _, table := range []string{"e1", "e2", "e3", "e4"} {
		name := serial.M.Table(table).Name
		dump := `SELECT * FROM ` + name + ` ORDER BY id`
		a, err := serial.DB.Query(dump)
		if err != nil {
			t.Fatal(err)
		}
		b, err := paral.DB.Query(dump)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Data) != len(b.Data) {
			t.Errorf("%s: %d rows serial, %d parallel", table, len(a.Data), len(b.Data))
			continue
		}
		for i := range a.Data {
			for j := range a.Data[i] {
				av := relational.FormatValue(a.Data[i][j])
				bv := relational.FormatValue(b.Data[i][j])
				if av != bv {
					t.Errorf("%s row %d col %d: %s != %s", table, i, j, av, bv)
				}
			}
		}
	}
}

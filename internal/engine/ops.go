package engine

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// InsertContent inserts a new XML subtree (literal content, not a copy of
// stored data) as a child of the tuple dstParentID. The subtree's root must
// be a table element. It returns the new root tuple's id.
//
// Literal content arrives as one INSERT per tuple: unlike the §6.2 copy
// methods there is no stored source to replicate from.
func (s *Store) InsertContent(dstParentID int64, content *xmltree.Element) (int64, error) {
	return s.InsertContentAt(dstParentID, content, 0)
}

// InsertContentAt inserts literal content with an explicit position (only
// meaningful when Options.OrderColumn is set).
func (s *Store) InsertContentAt(dstParentID int64, content *xmltree.Element, pos int) (int64, error) {
	tm := s.M.Table(content.Name)
	if tm == nil {
		return 0, fmt.Errorf("engine: element <%s> has no table; use InsertInlined", content.Name)
	}
	sh := &shred.Shredder{M: s.M, NextID: s.NextID()}
	ds, err := sh.ShredSubtree(content, dstParentID, pos)
	if err != nil {
		return 0, err
	}
	var rootID int64
	// One INSERT per tuple plus ASR paths: atomic, so a failure on the nth
	// tuple leaves no partial subtree and returns the reserved ids.
	err = s.atomically(func() error {
		rootID = s.NextID()
		s.AllocateIDs(int64(ds.TupleCount()))
		for _, sql := range s.M.InsertSQL(ds) {
			if _, err := s.sql().Exec(sql); err != nil {
				return err
			}
		}
		if s.ASR != nil {
			return s.addASRPathsForNew(content.Name, ds, dstParentID)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return rootID, nil
}

// addASRPathsForNew inserts left-complete paths for newly created tuples.
func (s *Store) addASRPathsForNew(rootElem string, ds *shred.Dataset, dstParentID int64) error {
	level := s.ASR.LevelOf[rootElem]
	var prefix []relational.Value
	if level > 0 {
		parentElem := s.M.Table(rootElem).Parent
		chain, err := s.chainIDs(parentElem, dstParentID)
		if err != nil {
			return err
		}
		prefix = chain
	}
	// Rebuild parent→children links from the dataset.
	type tup struct {
		elem string
		id   int64
	}
	children := make(map[int64][]tup)
	ids := make(map[string]map[int64]bool)
	for elem, rows := range ds.Rows {
		ids[elem] = make(map[int64]bool)
		for _, r := range rows {
			id := r[0].MustInt()
			ids[elem][id] = true
			if pid, ok := r[1].Int(); ok {
				children[pid] = append(children[pid], tup{elem, id})
			}
		}
	}
	var paths [][]relational.Value
	var walk func(id int64, path []relational.Value)
	walk = func(id int64, path []relational.Value) {
		kids := children[id]
		leaf := true
		for _, k := range kids {
			// Only descend into tuples created by this dataset.
			if ids[k.elem][k.id] {
				leaf = false
				walk(k.id, append(path, relational.Int(k.id)))
			}
		}
		if leaf {
			p := make([]relational.Value, len(path))
			copy(p, path)
			paths = append(paths, p)
		}
	}
	for _, r := range ds.Rows[rootElem] {
		id := r[0].MustInt()
		base := make([]relational.Value, 0, s.ASR.Depth)
		base = append(base, prefix...)
		base = append(base, relational.Int(id))
		walk(id, base)
	}
	return s.ASR.InsertPaths(s.sql(), paths)
}

// ReplaceSubtrees replaces each subtree rooted at a matching tuple of elem
// with a fresh copy of content, attached to the same parent (§6.3: a replace
// is a deletion followed by an insertion). It returns the number of subtrees
// replaced.
func (s *Store) ReplaceSubtrees(elem, where string, content *xmltree.Element) (int, error) {
	tm := s.M.Table(elem)
	if tm == nil {
		return 0, fmt.Errorf("engine: element %q has no table", elem)
	}
	sql := fmt.Sprintf("SELECT id, parentId FROM %s", tm.Name)
	if where != "" {
		sql += " WHERE " + where
	}
	rows, err := s.sql().Query(sql)
	if err != nil {
		return 0, err
	}
	if len(rows.Data) == 0 {
		return 0, nil
	}
	var ids []string
	var parents []int64
	for _, r := range rows.Data {
		ids = append(ids, fmt.Sprint(r[0]))
		pid, _ := r[1].Int()
		parents = append(parents, pid)
	}
	// Insert first (the content may be evaluated against the pre-delete
	// state by the caller), then delete the old subtrees by id — one
	// transaction, so a failed delete does not strand the fresh copies.
	err = s.atomically(func() error {
		for _, pid := range parents {
			if _, err := s.InsertContent(pid, content); err != nil {
				return err
			}
		}
		_, err := s.DeleteSubtrees(elem, fmt.Sprintf("id IN (%s)", strings.Join(ids, ", ")))
		return err
	})
	if err != nil {
		return 0, err
	}
	return len(parents), nil
}

// RenameInlined renames an inlined element or attribute by moving its data
// column(s) to the columns of the new name (§6.3: a rename affects only the
// outermost level, only the top-level table needs updating, and no new ids
// are generated). Both old and new names must be declared in the DTD so that
// their columns exist.
func (s *Store) RenameInlined(tableElem string, oldPath []string, newName, where string) (int, error) {
	if len(oldPath) == 0 {
		return 0, fmt.Errorf("engine: empty rename path")
	}
	newPath := append(append([]string(nil), oldPath[:len(oldPath)-1]...), newName)
	oldCols := s.M.ColumnsUnder(tableElem, oldPath)
	if len(oldCols) == 0 {
		return 0, fmt.Errorf("engine: no columns at %s/%s", tableElem, strings.Join(oldPath, "/"))
	}
	tm := s.M.Table(tableElem)
	var sets []string
	for _, oc := range oldCols {
		// Counterpart path: replace the renamed prefix.
		rel := oc.Path[len(oldPath):]
		target := append(append([]string(nil), newPath...), rel...)
		var nc *shred.ColumnMap
		switch oc.Kind {
		case shred.AttrColumn:
			nc = s.M.FindColumn(tableElem, target, oc.Attr)
		case shred.TextColumn:
			nc = s.M.FindColumn(tableElem, target, "")
		case shred.FlagColumn:
			nc = s.M.FlagColumnFor(tableElem, target)
		}
		if nc == nil {
			return 0, fmt.Errorf("engine: rename target %s/%s has no column for %s (declare it in the DTD)",
				tableElem, strings.Join(target, "/"), oc.Name)
		}
		sets = append(sets, fmt.Sprintf("%s = %s", nc.Name, oc.Name), fmt.Sprintf("%s = NULL", oc.Name))
	}
	sql := fmt.Sprintf("UPDATE %s SET %s", tm.Name, strings.Join(sets, ", "))
	if where != "" {
		sql += " WHERE " + where
	}
	return s.sql().Exec(sql)
}

// Reconstruct returns the store's current content as an XML document.
func (s *Store) Reconstruct() (*xmltree.Document, error) {
	return shred.Reconstruct(s.DB, s.M)
}

package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

// TestTriggerDeleteWithASRKeptConsistent: a store configured for ASR inserts
// but trigger deletes must keep the ASR usable after a trigger delete.
func TestTriggerDeleteWithASRKeptConsistent(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger, Insert: ASRInsert})
	if s.ASR == nil {
		t.Fatal("store should have an ASR (insert method requires it)")
	}
	if _, err := s.DeleteSubtrees("Customer", "Name_v = 'Mary'"); err != nil {
		t.Fatal(err)
	}
	// After maintenance, the ASR must not reference Mary's tuples.
	rows, err := s.DB.Query(`SELECT COUNT(*) FROM ASR WHERE c1 IS NOT NULL AND c1 NOT IN (SELECT id FROM Customer)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].MustInt() != 0 {
		t.Error("ASR references deleted tuples after trigger delete")
	}
	// And an ASR insert still works.
	if _, err := s.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	if got := s.DB.Table("Customer").RowCount(); got != 4 {
		t.Errorf("customers = %d, want 4", got)
	}
}

// TestCopySubtreesWithOrderColumn: copies are still well formed when the
// mapping stores positions.
func TestCopySubtreesWithOrderColumn(t *testing.T) {
	for _, m := range allInsertMethods {
		s := openCust(t, Options{Insert: m, OrderColumn: true})
		if _, err := s.CopySubtrees("Customer", "Name_v = 'Mary'", 1); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		doc, err := s.Reconstruct()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		marys := 0
		for _, c := range doc.Root.ChildElementsNamed("Customer") {
			if c.FirstChildNamed("Name").TextContent() == "Mary" {
				marys++
				if len(c.ChildElementsNamed("Order")) != 1 {
					t.Errorf("%v: Mary copy lost her order", m)
				}
			}
		}
		if marys != 2 {
			t.Errorf("%v: marys = %d, want 2", m, marys)
		}
	}
}

// TestDeleteEmptyMatchIsNoop across methods.
func TestDeleteEmptyMatchIsNoop(t *testing.T) {
	for _, m := range allDeleteMethods {
		s := openCust(t, Options{Delete: m})
		before := s.TupleCount()
		n, err := s.DeleteSubtrees("Customer", "Name_v = 'Nobody'")
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if n != 0 || s.TupleCount() != before {
			t.Errorf("%v: empty delete changed the store", m)
		}
	}
}

// TestCopyEmptyMatchIsNoop across methods.
func TestCopyEmptyMatchIsNoop(t *testing.T) {
	for _, m := range allInsertMethods {
		s := openCust(t, Options{Insert: m})
		before := s.TupleCount()
		n, err := s.CopySubtrees("Customer", "Name_v = 'Nobody'", 1)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if n != 0 || s.TupleCount() != before {
			t.Errorf("%v: empty copy changed the store", m)
		}
	}
}

// TestRepeatedCopiesKeepIDsUnique: the id allocation schemes of the three
// insert methods must never collide across repeated operations.
func TestRepeatedCopiesKeepIDsUnique(t *testing.T) {
	for _, m := range allInsertMethods {
		s := openCust(t, Options{Insert: m})
		for i := 0; i < 3; i++ {
			if _, err := s.CopySubtrees("Customer", "Address_City_v = 'Seattle'", 1); err != nil {
				t.Fatalf("%v round %d: %v", m, i, err)
			}
		}
		for _, elem := range s.M.TableOrder {
			tm := s.M.Table(elem)
			rows, err := s.DB.Query(fmt.Sprintf("SELECT COUNT(*) FROM %s", tm.Name))
			if err != nil {
				t.Fatal(err)
			}
			distinct, err := s.DB.Query(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE id IN (SELECT DISTINCT id FROM %s)", tm.Name, tm.Name))
			if err != nil {
				t.Fatal(err)
			}
			if rows.Data[0][0] != distinct.Data[0][0] {
				t.Errorf("%v: duplicate ids in %s", m, tm.Name)
			}
		}
	}
}

// TestInsertNewRefAppends: the relational reference-append path (§3.2
// semantics over the space-separated IDREFS column).
func TestInsertNewRefAppends(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (lab*, person*)>
<!ELEMENT lab (#PCDATA)>
<!ELEMENT person (#PCDATA)>
<!ATTLIST lab ID ID #REQUIRED staff IDREFS #IMPLIED>
<!ATTLIST person ID ID #REQUIRED>
`)
	doc, err := xmltree.ParseWith(
		`<root><lab ID="l1" staff="p1">x</lab><lab ID="l2">y</lab><person ID="p1">A</person><person ID="p2">B</person></root>`,
		xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(`
FOR $l IN document("d")/root/lab
UPDATE $l { INSERT new_ref(staff, "p2") }`); err != nil {
		t.Fatal(err)
	}
	re, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	l1 := re.ByID("l1")
	if r := l1.Ref("staff"); r == nil || len(r.IDs) != 2 || r.IDs[0] != "p1" || r.IDs[1] != "p2" {
		t.Errorf("l1 staff = %+v", l1.Ref("staff"))
	}
	l2 := re.ByID("l2")
	if r := l2.Ref("staff"); r == nil || len(r.IDs) != 1 || r.IDs[0] != "p2" {
		t.Errorf("l2 staff = %+v", l2.Ref("staff"))
	}
}

// TestDeepInlinedPredicate: predicates over multi-level inlined paths.
func TestDeepInlinedPredicate(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger})
	n, err := s.ExecString(`
FOR $d IN document("x")/CustDB,
    $c IN $d/Customer[Address/City="Portland"]
UPDATE $d { DELETE $c }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("targets = %d", n)
	}
	doc, _ := s.Reconstruct()
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Name").TextContent() == "Mary" {
			t.Error("Portland customer survived")
		}
	}
}

// TestNumericPredicate: integer comparison over inlined payloads.
func TestNumericPredicate(t *testing.T) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 10, Depth: 2, Fanout: 1, Seed: 4})
	s, err := Open(doc, Options{Delete: PerTupleTrigger})
	if err != nil {
		t.Fatal(err)
	}
	// Count subtrees whose k1 payload is below 500000, then delete them.
	rows, err := s.DB.Query(`SELECT COUNT(*) FROM e1 WHERE k1_v < '500000'`)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	n, err := s.DeleteSubtrees("e1", "k1_v < '500000'")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DB.Table("e1").RowCount(); got != 10-n {
		t.Errorf("e1 rows = %d after deleting %d", got, n)
	}
}

// TestQuerySubtreesWithWhere: the RETURN path honors WHERE clauses.
func TestQuerySubtreesWithWhere(t *testing.T) {
	s := openCust(t, Options{})
	stmt := mustParse(t, `
FOR $c IN document("x")/CustDB/Customer
WHERE $c/Address/State = "CA"
RETURN $c`)
	subs, err := s.QuerySubtrees(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("subtrees = %d", len(subs))
	}
	if got := subs[0].FirstChildNamed("Address").FirstChildNamed("City").TextContent(); got != "Sacramento" {
		t.Errorf("city = %q", got)
	}
}

func TestQuerySubtreesErrors(t *testing.T) {
	s := openCust(t, Options{})
	// Update statement through QuerySubtrees.
	up := mustParse(t, `FOR $c IN document("x")/CustDB/Customer UPDATE $c { INSERT new_attribute(a,"1") }`)
	if _, err := s.QuerySubtrees(up); err == nil {
		t.Error("update via QuerySubtrees should fail")
	}
	// RETURN of a path rather than a bare variable.
	q := mustParse(t, `FOR $c IN document("x")/CustDB/Customer RETURN $c/Name`)
	if _, err := s.QuerySubtrees(q); err == nil {
		t.Error("RETURN with a path should fail")
	}
}

// TestExecStringErrors covers translation error paths.
func TestExecStringErrors(t *testing.T) {
	s := openCust(t, Options{})
	cases := []struct {
		q    string
		frag string
	}{
		{`FOR $c IN document("x")/CustDB/Customer, $n IN $c/Name UPDATE $n { DELETE $n }`, "table element"},
		{`FOR $c IN document("x")/CustDB/Customer UPDATE $c { RENAME $c TO Client }`, "RENAME"},
		{`FOR $c IN document("x")/CustDB/Customer, $o IN $c/Order UPDATE $c { INSERT "x" BEFORE $o }`, "content"},
		{`FOR $c IN document("x")//Name UPDATE $c { DELETE $c }`, "table"},
	}
	for _, c := range cases {
		_, err := s.ExecString(c.q)
		if err == nil {
			t.Errorf("ExecString(%q) succeeded, want error", c.q)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ExecString(%q) error %q does not mention %q", c.q, err, c.frag)
		}
	}
}

// TestSnapshotRestoreRoundTrip on the engine level.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger, Insert: TableInsert})
	before, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if _, err := s.DeleteSubtrees("Customer", "Name_v = 'John'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CopySubtrees("Customer", "Name_v = 'Mary'", 1); err != nil {
		t.Fatal(err)
	}
	s.Restore(snap)
	after, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if after.String() != before.String() {
		t.Error("snapshot restore did not round-trip the store")
	}
	// NextID restored too: a copy after restore reuses the id range.
	id1 := s.NextID()
	s.Restore(snap)
	if s.NextID() != id1 {
		t.Error("NextID not restored")
	}
}

// TestMultipleUpdatesSequence: several ExecString calls compose.
func TestMultipleUpdatesSequence(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger, OrderColumn: true})
	steps := []string{
		`FOR $c IN document("x")/CustDB/Customer[Name="Mary"] UPDATE $c { INSERT <Order><Date>2001-05-05</Date></Order> }`,
		`FOR $c IN document("x")/CustDB/Customer[Name="Mary"], $o IN $c/Order[Date="2000-07-04"] UPDATE $c { DELETE $o }`,
	}
	for _, q := range steps {
		if _, err := s.ExecString(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	doc, _ := s.Reconstruct()
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Name").TextContent() != "Mary" {
			continue
		}
		orders := c.ChildElementsNamed("Order")
		if len(orders) != 1 || orders[0].FirstChildNamed("Date").TextContent() != "2001-05-05" {
			t.Errorf("Mary's orders wrong: %d", len(orders))
		}
	}
}

// TestFixedDocBulkWorkflowAllMethods: a sweep across methods on synthetic
// data, checking final tuple counts agree.
func TestFixedDocBulkWorkflowAllMethods(t *testing.T) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 8, Depth: 3, Fanout: 2, Seed: 2})
	for _, dm := range allDeleteMethods {
		s, err := Open(doc, Options{Delete: dm})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.DeleteSubtrees("e1", ""); err != nil {
			t.Fatalf("%v: %v", dm, err)
		}
		if got := s.TupleCount(); got != 1 {
			t.Errorf("%v: tuples after bulk delete = %d, want 1 (root)", dm, got)
		}
	}
	for _, im := range allInsertMethods {
		s, err := Open(doc, Options{Insert: im})
		if err != nil {
			t.Fatal(err)
		}
		before := s.TupleCount()
		n, err := s.CopySubtrees("e1", "", 1)
		if err != nil {
			t.Fatalf("%v: %v", im, err)
		}
		if n != 8 {
			t.Errorf("%v: copied %d roots, want 8", im, n)
		}
		if got := s.TupleCount(); got != 2*before-1 {
			t.Errorf("%v: tuples = %d, want %d", im, got, 2*before-1)
		}
	}
}

// TestReconstructAfterMixedWorkload: reconstruction stays well-formed after
// an interleaved delete/copy/update sequence.
func TestReconstructAfterMixedWorkload(t *testing.T) {
	doc := testdocs.Cust()
	s, err := Open(doc, Options{Delete: ASRDelete, Insert: ASRInsert})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteSubtrees("Customer", "Address_State_v = 'CA'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(`
FOR $c IN document("x")/CustDB/Customer[Name="Mary"]
UPDATE $c { INSERT <Order><Date>2001-09-09</Date></Order> }`); err != nil {
		t.Fatal(err)
	}
	re, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	// 3 original + 2 copies - 2 CA (original + copy) = 3 customers.
	if got := len(re.Root.ChildElementsNamed("Customer")); got != 3 {
		t.Errorf("customers = %d, want 3", got)
	}
	// Re-parse what we serialized: well-formedness check.
	if _, err := xmltree.Parse(re.String()); err != nil {
		t.Errorf("reconstructed document is not well-formed: %v", err)
	}
}

package engine

import (
	"strings"
	"testing"

	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func noCkptOpts() relational.Options {
	return relational.Options{Sync: relational.SyncOff, CheckpointBytes: -1}
}

// souDump renders the Sorted-Outer-Union reconstruction of every Customer
// subtree in document order — the output the acceptance criterion compares
// across a restart.
func souDump(t *testing.T, s *Store) string {
	t.Helper()
	subs, err := outerunion.Query(s.DB, s.M, "Customer", "")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, st := range subs {
		b.WriteString(xmltree.SerializeWith(st.Root, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true}))
		b.WriteByte('\n')
	}
	return b.String()
}

const example8 = `
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"],
    $st IN $o/Status
UPDATE $o {
    REPLACE $st WITH <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`

const insertOrder = `
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"]
UPDATE $c {
    INSERT <Order><Date>2001-01-01</Date><OrderLine><ItemName>saw</ItemName><Qty>1</Qty></OrderLine></Order>
}`

// TestOpenDirShredUpdateReopenQuery is the acceptance round-trip: shred a
// document into a data directory, apply updates, "restart" (close and
// reopen from disk, no document), query — the SOU reconstruction output
// must equal a never-restarted in-memory store that ran the same updates.
func TestOpenDirShredUpdateReopenQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{Delete: PerTupleTrigger}, noCkptOpts())
	if err != nil {
		t.Fatalf("OpenDir (init): %v", err)
	}
	if _, err := s.ExecString(example8); err != nil {
		t.Fatal(err)
	}
	beforeRestart := souDump(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: no document this time — everything comes from disk.
	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatalf("OpenDir (reopen): %v", err)
	}
	defer s2.Close()
	if got := souDump(t, s2); got != beforeRestart {
		t.Fatalf("SOU reconstruction differs across restart:\n got:\n%s\nwant:\n%s", got, beforeRestart)
	}

	// And against a store that never persisted anything.
	mem := openCust(t, Options{Delete: PerTupleTrigger})
	if _, err := mem.ExecString(example8); err != nil {
		t.Fatal(err)
	}
	if want := souDump(t, mem); beforeRestart != want {
		t.Fatalf("persistent store diverges from in-memory store:\n got:\n%s\nwant:\n%s", beforeRestart, want)
	}

	// The reopened store keeps working: run another update and compare full
	// reconstructions again.
	if _, err := s2.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	d2, err := s2.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := mem.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if d2.String() != dm.String() {
		t.Fatalf("post-restart update diverges:\n got:\n%s\nwant:\n%s", d2.String(), dm.String())
	}
}

// TestNextIDSurvivesRestart: id allocation must continue gaplessly after a
// reopen — the §6.2.2 systemwide counter is part of the durable state.
func TestNextIDSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	wantNext := s.NextID()
	s.Close()

	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NextID(); got != wantNext {
		t.Fatalf("NextID after restart = %d, want %d", got, wantNext)
	}
	// The in-memory twin allocates the same ids for the same second insert.
	mem := openCust(t, Options{})
	if _, err := mem.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	if s2.NextID() != mem.NextID() {
		t.Fatalf("id allocation diverged: persistent %d vs in-memory %d", s2.NextID(), mem.NextID())
	}
	d2, _ := s2.Reconstruct()
	dm, _ := mem.Reconstruct()
	if d2.String() != dm.String() {
		t.Fatal("documents diverged after restart + insert")
	}
}

// TestCrashRecoveryWithoutClose: abandoning the store (no Close, no
// checkpoint) must lose nothing — every committed update is in the log.
func TestCrashRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(example8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	want, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash by simply reopening the directory.
	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	got, err := s2.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("crash recovery lost committed updates:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}
}

// TestASRStoreRecovery: the ASR table recovers with the data and the
// reattached structure drives further ASR deletes correctly.
func TestASRStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{Delete: ASRDelete, Insert: ASRInsert}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteSubtrees("Customer", "Name_v = 'John'"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ASR == nil {
		t.Fatal("reopened store lost its ASR")
	}
	if s2.Opt.Delete != ASRDelete || s2.Opt.Insert != ASRInsert {
		t.Fatalf("options not restored from metadata: %+v", s2.Opt)
	}
	// ASR-driven delete still works on the recovered path index.
	if _, err := s2.DeleteSubtrees("Order", "Status_v = 'shipped'"); err != nil {
		t.Fatalf("ASR delete after recovery: %v", err)
	}
	mem := openCust(t, Options{Delete: ASRDelete, Insert: ASRInsert})
	if _, err := mem.DeleteSubtrees("Customer", "Name_v = 'John'"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.DeleteSubtrees("Order", "Status_v = 'shipped'"); err != nil {
		t.Fatal(err)
	}
	d2, _ := s2.Reconstruct()
	dm, _ := mem.Reconstruct()
	if d2.String() != dm.String() {
		t.Fatalf("ASR store diverged after recovery:\n got:\n%s\nwant:\n%s", d2.String(), dm.String())
	}
}

// TestReopenRejectsMismatchedDocument: reopening an initialized store with
// a document of different provenance must error, not silently reopen the
// old data under the new document's name.
func TestReopenRejectsMismatchedDocument(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Same document: reopening with it is fine (idempotent init command).
	s2, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatalf("reopen with matching document: %v", err)
	}
	s2.Close()

	// A document with a different DTD must be rejected.
	other := xmltree.MustParseDTD(`<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (#PCDATA)>`)
	doc, err := xmltree.ParseWith("<CustDB><Customer>x</Customer></CustDB>", xmltree.ParseOptions{TrimText: true, DTD: other})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, doc, Options{}, noCkptOpts()); err == nil ||
		!strings.Contains(err.Error(), "DTD differs") {
		t.Fatalf("mismatched DTD: err = %v, want rejection", err)
	}
}

// TestHalfInitializedStoreRebuilds: a crash during initialization (before
// the metadata's final 'nextid' write) must not brick the directory —
// OpenDir with the document wipes the partial log and redoes the shred,
// and OpenDir without one reports what happened instead of failing
// obscurely.
func TestHalfInitializedStoreRebuilds(t *testing.T) {
	dir := t.TempDir()
	// Simulate the crash window: a relational DB with shredded tables and
	// bulk rows but no (complete) metadata, abandoned mid-initialization.
	db, err := relational.Open(dir, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	doc := custDoc(t)
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shred.Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	// No Close, no meta: this is the half-built state.

	if _, err := OpenDir(dir, nil, Options{}, noCkptOpts()); err == nil ||
		!strings.Contains(err.Error(), "half-initialized") {
		t.Fatalf("doc-less open of a partial store: err = %v, want half-initialized diagnosis", err)
	}
	s, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatalf("re-initialization over a partial store: %v", err)
	}
	defer s.Close()
	got, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	mem := openCust(t, Options{})
	want, _ := mem.Reconstruct()
	if got.String() != want.String() {
		t.Fatal("rebuilt store does not match a fresh shred")
	}
	// And the rebuilt store is fully functional + durable.
	if _, err := s.ExecString(insertOrder); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NextID() != s.NextID() {
		t.Fatal("rebuilt store lost durability")
	}
}

// TestRolledBackUpdateNotReplayed: a failed multi-sub-op update must leave
// nothing in the log — recovery lands on the pre-update state.
func TestRolledBackUpdateNotReplayed(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	wantNext := s.NextID()
	if _, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer, $o IN $c/Order
UPDATE $c {
    DELETE $o,
    INSERT <Name>Zed</Name>
}`); err == nil {
		t.Fatal("expected execution-phase failure")
	}
	// Crash without Close: the log must not contain the rolled-back work.
	s2, err := OpenDir(dir, nil, Options{}, noCkptOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("rolled-back update leaked into the recovered store")
	}
	if s2.NextID() != wantNext {
		t.Fatalf("NextID after recovered rollback = %d, want %d", s2.NextID(), wantNext)
	}
}

// pagedOpts runs the store on the paged storage backend with a pool far
// smaller than the shredded document, so SOU reconstruction streams through
// faults and evictions rather than resident rows.
func pagedOpts() relational.Options {
	o := noCkptOpts()
	o.Storage = relational.StoragePaged
	o.PoolPages = 4
	o.PageSize = 512
	return o
}

// TestOpenDirPagedStorage is the paged twin of the acceptance round-trip:
// shred, update, checkpoint, restart, and SOU-reconstruct on a pool a
// fraction of the dataset — output must be byte-identical to an in-memory
// store, with evictions proving the pool actually bounded residency.
func TestOpenDirPagedStorage(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, custDoc(t), Options{Delete: PerTupleTrigger}, pagedOpts())
	if err != nil {
		t.Fatalf("OpenDir (init, paged): %v", err)
	}
	if _, err := s.ExecString(example8); err != nil {
		t.Fatal(err)
	}
	if err := s.DB.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	beforeRestart := souDump(t, s)
	if s.DB.Stats().Evictions == 0 {
		t.Fatal("paged store never evicted — pool larger than the document")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := OpenDir(dir, nil, Options{}, pagedOpts())
	if err != nil {
		t.Fatalf("OpenDir (reopen, paged): %v", err)
	}
	defer s2.Close()
	if got := souDump(t, s2); got != beforeRestart {
		t.Fatalf("paged SOU reconstruction differs across restart:\n got:\n%s\nwant:\n%s", got, beforeRestart)
	}

	mem := openCust(t, Options{Delete: PerTupleTrigger})
	if _, err := mem.ExecString(example8); err != nil {
		t.Fatal(err)
	}
	if want := souDump(t, mem); beforeRestart != want {
		t.Fatalf("paged store diverges from in-memory store:\n got:\n%s\nwant:\n%s", beforeRestart, want)
	}
}

package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/asr"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// Persistent stores. OpenDir roots a Store in a directory backed by the
// relational layer's write-ahead log: the first open shreds the document,
// records the bulk load in the log, persists the mapping's provenance (the
// serialized DTD, root element, and options) in a metadata table, and
// checkpoints; later opens recover the database from checkpoint + log and
// rebuild the mapping from the stored DTD — no document needed. Update
// statements executed through the store commit through the log, so a crash
// between invocations of xupdate/xshred loses nothing that was committed.

// metaTable is the store's metadata relation: a key/value table written
// through SQL so its contents ride the same redo log as the data. It holds
// the serialized DTD, the root element name, the options the schema was
// generated under, and the systemwide next-available-id counter (updated
// inside each update's transaction, so id allocation survives both
// rollbacks and crashes).
const metaTable = "_xmeta"

// OpenDir opens (or initializes) a persistent store. doc may be nil when
// the directory already holds a store; when it is needed (first open) it
// must carry a DTD. opts apply only at initialization — a reopened store
// runs under the options it was created with, which the schema, triggers,
// and ASR on disk were generated from.
//
// Initialization is crash-atomic by detection, not by a single commit: the
// metadata's 'nextid' row is written last, so a directory whose recovered
// state has tables but no complete metadata is a half-built store — OpenDir
// wipes the log and redoes the initialization from the document (the data
// so far was nothing but a replay of that same shred).
func OpenDir(dir string, doc *xmltree.Document, opts Options, dopts relational.Options) (*Store, error) {
	db, err := relational.Open(dir, dopts)
	if err != nil {
		return nil, err
	}
	switch storeState(db) {
	case stateReady:
		s, err := reopen(db, doc)
		if err != nil {
			db.Close()
			return nil, err
		}
		return s, nil
	case statePartial:
		// Crash mid-initialization. Nothing beyond the interrupted shred
		// ever lived here (updates require a complete store), so discard
		// the log and start over.
		db.Close()
		if doc == nil {
			return nil, fmt.Errorf("engine: directory holds a half-initialized store; re-run OpenDir with the document to rebuild it")
		}
		if err := wipeStoreDir(dir); err != nil {
			return nil, err
		}
		if db, err = relational.Open(dir, dopts); err != nil {
			return nil, err
		}
	}
	s, err := initStore(db, doc, opts)
	if err != nil {
		db.Close()
		return nil, err
	}
	return s, nil
}

type storeStateKind int

const (
	stateFresh storeStateKind = iota
	statePartial
	stateReady
)

// storeState classifies a recovered directory: ready (complete metadata),
// fresh (nothing at all), or partial (an initialization that never reached
// its final metadata write).
func storeState(db *relational.DB) storeStateKind {
	if db.Table(metaTable) == nil {
		if len(db.TableNames()) == 0 {
			return stateFresh
		}
		return statePartial
	}
	rows, err := db.Query(fmt.Sprintf("SELECT v FROM %s WHERE k = 'nextid'", metaTable))
	if err != nil || len(rows.Data) != 1 {
		return statePartial
	}
	return stateReady
}

// wipeStoreDir removes the log and checkpoint files of a half-initialized
// store so initialization can restart from nothing.
func wipeStoreDir(dir string) error {
	for _, pat := range []string{"wal-*.seg", "ckpt-*.ckpt", "ckpt.tmp"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func initStore(db *relational.DB, doc *xmltree.Document, opts Options) (*Store, error) {
	if doc == nil {
		return nil, fmt.Errorf("engine: directory holds no store; OpenDir needs a document to initialize one")
	}
	if doc.DTD == nil {
		return nil, fmt.Errorf("engine: document has no DTD; Shared Inlining requires one")
	}
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: opts.OrderColumn})
	if err != nil {
		return nil, err
	}
	ds, err := shred.Load(db, m, doc)
	if err != nil {
		return nil, err
	}
	// The bulk load bypassed SQL; append its statement-equivalent to the
	// log so recovery works even before the first checkpoint lands.
	if err := db.LogBulk(m.InsertSQL(ds)); err != nil {
		return nil, err
	}
	s := &Store{DB: db, M: m, Opt: opts, nextID: ds.MaxID + 1, persistent: true}
	if err := s.setup(); err != nil {
		return nil, err
	}
	if s.ASR != nil {
		if err := db.LogBulk(tableInsertSQL(db, s.ASR.Name)); err != nil {
			return nil, err
		}
	}
	if err := s.writeMeta(doc.DTD); err != nil {
		return nil, err
	}
	// Checkpoint folds the DDL history and bulk rows into one snapshot; the
	// log restarts empty, so reopen cost is one snapshot read.
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return s, nil
}

// writeMeta records the store's provenance through SQL (and therefore
// through the log). The 'nextid' row is deliberately last: its presence is
// the initialization-complete marker storeState checks, so a crash at any
// earlier point classifies the directory as partial.
func (s *Store) writeMeta(dtd *xmltree.DTD) error {
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (k VARCHAR(32), v VARCHAR(65535))", metaTable),
		metaInsert("dtd", xmltree.SerializeDTD(dtd)),
		metaInsert("root", s.M.Root),
		metaInsert("ordercol", boolMeta(s.Opt.OrderColumn)),
		metaInsert("delete", strconv.Itoa(int(s.Opt.Delete))),
		metaInsert("insert", strconv.Itoa(int(s.Opt.Insert))),
		metaInsert("nextid", strconv.FormatInt(s.nextID, 10)),
	}
	for _, sql := range stmts {
		if _, err := s.DB.Exec(sql); err != nil {
			return err
		}
	}
	return nil
}

func metaInsert(k, v string) string {
	return fmt.Sprintf("INSERT INTO %s VALUES (%s, %s)",
		metaTable, relational.FormatValue(relational.Text(k)), relational.FormatValue(relational.Text(v)))
}

func boolMeta(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// reopen rebuilds a Store over an already-recovered database. When the
// caller supplied a document anyway, its provenance must match the stored
// one: silently reopening v1 data under a v2 document would have the user
// updating the wrong store. (Matching provenance with different element
// content is fine — the store's data is the updated truth, the document a
// stale seed.)
func reopen(db *relational.DB, doc *xmltree.Document) (*Store, error) {
	rows, err := db.Query(fmt.Sprintf("SELECT k, v FROM %s", metaTable))
	if err != nil {
		return nil, err
	}
	meta := make(map[string]string, len(rows.Data))
	for _, r := range rows.Data {
		k, _ := r[0].Text()
		v, _ := r[1].Text()
		meta[k] = v
	}
	for _, key := range []string{"dtd", "root", "nextid"} {
		if meta[key] == "" {
			return nil, fmt.Errorf("engine: store metadata is missing %q; the directory is not a complete store", key)
		}
	}
	dtd, err := xmltree.ParseDTD(meta["dtd"])
	if err != nil {
		return nil, fmt.Errorf("engine: stored DTD: %w", err)
	}
	if doc != nil {
		if doc.Root == nil || doc.Root.Name != meta["root"] {
			return nil, fmt.Errorf("engine: store was initialized from a %q document; the given document roots at %q (use a fresh directory for a different document)",
				meta["root"], rootName(doc))
		}
		// SerializeDTD is a parse→serialize fixed point, so equal schemas
		// serialize identically.
		if doc.DTD == nil || xmltree.SerializeDTD(doc.DTD) != meta["dtd"] {
			return nil, fmt.Errorf("engine: the given document's DTD differs from the one this store was initialized with (use a fresh directory for a new schema)")
		}
	}
	opts := Options{OrderColumn: meta["ordercol"] == "1"}
	if n, err := strconv.Atoi(meta["delete"]); err == nil {
		opts.Delete = DeleteMethod(n)
	}
	if n, err := strconv.Atoi(meta["insert"]); err == nil {
		opts.Insert = InsertMethod(n)
	}
	m, err := shred.BuildMapping(dtd, meta["root"], shred.Options{OrderColumn: opts.OrderColumn})
	if err != nil {
		return nil, err
	}
	nextID, err := strconv.ParseInt(meta["nextid"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("engine: stored nextid %q: %w", meta["nextid"], err)
	}
	s := &Store{DB: db, M: m, Opt: opts, nextID: nextID, persistent: true}
	// Triggers were recovered with the schema; the ASR table was recovered
	// with the data. Only the in-memory ASR structure needs rebuilding.
	if opts.Delete == ASRDelete || opts.Insert == ASRInsert {
		a, err := asr.Attach(m)
		if err != nil {
			return nil, err
		}
		s.ASR = a
	}
	return s, nil
}

func rootName(doc *xmltree.Document) string {
	if doc.Root == nil {
		return ""
	}
	return doc.Root.Name
}

// tableInsertSQL renders a table's live rows as INSERT statements in rowid
// order — the logged equivalent of a bulk load into a fresh table.
func tableInsertSQL(db *relational.DB, name string) []string {
	t := db.Table(name)
	if t == nil {
		return nil
	}
	var out []string
	t.Scan(func(_ int, row []relational.Value) bool {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = relational.FormatValue(v)
		}
		out = append(out, fmt.Sprintf("INSERT INTO %s VALUES (%s)", t.Name, strings.Join(vals, ", ")))
		return true
	})
	return out
}

// Close flushes the store's log to stable storage and releases it. For
// in-memory stores it is a no-op.
func (s *Store) Close() error { return s.DB.Close() }

// Checkpoint snapshots the store into its log directory and truncates
// superseded log segments. Only valid for persistent stores.
func (s *Store) Checkpoint() error { return s.DB.Checkpoint() }

package engine

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

func custDoc(t testing.TB) *xmltree.Document {
	t.Helper()
	dtd := xmltree.MustParseDTD(testdocs.CustDTD)
	doc, err := xmltree.ParseWith(testdocs.CustXML, xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func openCust(t testing.TB, opts Options) *Store {
	t.Helper()
	s, err := Open(custDoc(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var allDeleteMethods = []DeleteMethod{PerTupleTrigger, PerStatementTrigger, CascadingDelete, ASRDelete}
var allInsertMethods = []InsertMethod{TupleInsert, TableInsert, ASRInsert}

// TestDeleteMethodsAgree runs the paper's Example 9 delete (customers named
// John) under all four strategies and checks they produce identical
// documents.
func TestDeleteMethodsAgree(t *testing.T) {
	var want string
	for _, m := range allDeleteMethods {
		s := openCust(t, Options{Delete: m})
		n, err := s.DeleteSubtrees("Customer", "Name_v = 'John'")
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if n != 2 {
			t.Errorf("%v: deleted %d roots, want 2", m, n)
		}
		// All orders and lines belonged to Johns.
		if got := s.DB.Table(s.M.Table("Order").Name).RowCount(); got != 1 {
			t.Errorf("%v: orders left = %d, want 1", m, got)
		}
		if got := s.DB.Table(s.M.Table("OrderLine").Name).RowCount(); got != 1 {
			t.Errorf("%v: lines left = %d, want 1", m, got)
		}
		doc, err := s.Reconstruct()
		if err != nil {
			t.Fatalf("%v: reconstruct: %v", m, err)
		}
		if want == "" {
			want = doc.String()
			continue
		}
		if doc.String() != want {
			t.Errorf("%v: document differs:\n%s\nwant:\n%s", m, doc.String(), want)
		}
	}
}

// TestDeleteStatementCounts verifies the cost model the paper explains:
// trigger methods issue one client statement, the cascade issues one per
// level (§6.1.2 "slightly more overhead since it requires more SQL
// statements").
func TestDeleteStatementCounts(t *testing.T) {
	counts := map[DeleteMethod]int64{}
	for _, m := range []DeleteMethod{PerTupleTrigger, PerStatementTrigger, CascadingDelete} {
		s := openCust(t, Options{Delete: m})
		s.DB.ResetStats()
		if _, err := s.DeleteSubtrees("Customer", "Name_v = 'John'"); err != nil {
			t.Fatal(err)
		}
		counts[m] = s.DB.Stats().Statements
	}
	if counts[PerTupleTrigger] != 1 || counts[PerStatementTrigger] != 1 {
		t.Errorf("trigger methods issued %d/%d statements, want 1 each",
			counts[PerTupleTrigger], counts[PerStatementTrigger])
	}
	if counts[CascadingDelete] <= 1 {
		t.Errorf("cascade issued %d statements, want > 1", counts[CascadingDelete])
	}
}

// TestPerTupleTriggerUsesIndexProbes: per-tuple triggers look up children by
// parentId, so rows scanned stays proportional to deleted content, not to
// table size.
func TestPerTupleTriggerUsesIndexProbes(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger})
	s.DB.ResetStats()
	if _, err := s.DeleteSubtrees("Customer", "Address_State_v = 'CA'"); err != nil {
		t.Fatal(err)
	}
	st := s.DB.Stats()
	// CA John has no orders: 3 customers scanned + index probes only.
	if st.RowsScanned > 6 {
		t.Errorf("per-tuple delete scanned %d rows", st.RowsScanned)
	}
}

func TestDeleteInlinedSimple(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger})
	// Simple deletion: Address is inlined; deleting it is one UPDATE.
	s.DB.ResetStats()
	n, err := s.DeleteInlined("Customer", []string{"Address"}, "Name_v = 'Mary'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("updated %d tuples", n)
	}
	if st := s.DB.Stats(); st.Statements != 1 {
		t.Errorf("simple delete used %d statements", st.Statements)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Name").TextContent() == "Mary" {
			if c.FirstChildNamed("Address") != nil {
				t.Error("Mary's address still present")
			}
		} else if c.FirstChildNamed("Address") == nil {
			t.Error("other customers' addresses disturbed")
		}
	}
}

// TestInsertMethodsAgree copies all John subtrees back under the root with
// each method and compares the resulting documents.
func TestInsertMethodsAgree(t *testing.T) {
	var want string
	for _, m := range allInsertMethods {
		s := openCust(t, Options{Insert: m})
		n, err := s.CopySubtrees("Customer", copyWhere(m, "Name_v = 'John'"), 1)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if n != 2 {
			t.Errorf("%v: copied %d roots, want 2", m, n)
		}
		if got := s.DB.Table(s.M.Table("Customer").Name).RowCount(); got != 5 {
			t.Errorf("%v: customers = %d, want 5", m, got)
		}
		if got := s.DB.Table(s.M.Table("Order").Name).RowCount(); got != 5 {
			t.Errorf("%v: orders = %d, want 5", m, got)
		}
		if got := s.DB.Table(s.M.Table("OrderLine").Name).RowCount(); got != 7 {
			t.Errorf("%v: lines = %d, want 7", m, got)
		}
		doc, err := s.Reconstruct()
		if err != nil {
			t.Fatalf("%v: reconstruct: %v", m, err)
		}
		if want == "" {
			want = doc.String()
			continue
		}
		if doc.String() != want {
			t.Errorf("%v: document differs:\n%s\nwant:\n%s", m, doc.String(), want)
		}
	}
}

// copyWhere adapts the source condition for the outer union alias used by
// the tuple method (its base query aliases the target table as T; the
// engine's SQL resolves unqualified names against it either way).
func copyWhere(_ InsertMethod, cond string) string { return cond }

// TestInsertStatementCounts verifies §6.2's cost claims: the tuple method
// issues one INSERT per source tuple; the table method a constant number per
// relation.
func TestInsertStatementCounts(t *testing.T) {
	tupleStore := openCust(t, Options{Insert: TupleInsert})
	tupleStore.DB.ResetStats()
	if _, err := tupleStore.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	tupleStmts := tupleStore.DB.Stats().Statements

	tableStore := openCust(t, Options{Insert: TableInsert})
	tableStore.DB.ResetStats()
	if _, err := tableStore.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	tableStmts := tableStore.DB.Stats().Statements

	// 7 source tuples copied (2 customers + 2 orders + 3 lines): tuple
	// method ≈ 1 query + 7 inserts; table method ≈ constant per relation.
	if tupleStmts < 8 {
		t.Errorf("tuple method used %d statements, want ≥ 8", tupleStmts)
	}

	// The scaling claim: the tuple method's statement count grows with the
	// number of source tuples, the table method's does not (Mary's subtree
	// has 3 tuples vs the Johns' 7).
	tupleSmall := openCust(t, Options{Insert: TupleInsert})
	tupleSmall.DB.ResetStats()
	if _, err := tupleSmall.CopySubtrees("Customer", "Name_v = 'Mary'", 1); err != nil {
		t.Fatal(err)
	}
	if small := tupleSmall.DB.Stats().Statements; small >= tupleStmts {
		t.Errorf("tuple statements did not grow with tuples: %d vs %d", small, tupleStmts)
	}
	tableSmall := openCust(t, Options{Insert: TableInsert})
	tableSmall.DB.ResetStats()
	if _, err := tableSmall.CopySubtrees("Customer", "Name_v = 'Mary'", 1); err != nil {
		t.Fatal(err)
	}
	if small := tableSmall.DB.Stats().Statements; small != tableStmts {
		t.Errorf("table statements should be constant per relation: %d vs %d", small, tableStmts)
	}
}

// TestTupleInsertGaplessIDs: §6.2.1 notes the tuple method allocates ids
// without gaps.
func TestTupleInsertGaplessIDs(t *testing.T) {
	s := openCust(t, Options{Insert: TupleInsert})
	before := s.NextID()
	if _, err := s.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	after := s.NextID()
	if after-before != 7 {
		t.Errorf("allocated %d ids for 7 tuples (gaps)", after-before)
	}
	// The table method's offset heuristic may allocate with gaps.
	s2 := openCust(t, Options{Insert: TableInsert})
	before = s2.NextID()
	if _, err := s2.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	if s2.NextID()-before < 7 {
		t.Errorf("table method allocated too few ids")
	}
}

func TestCopyIntoSpecificParent(t *testing.T) {
	// Copy Mary's single order under Seattle John's customer tuple.
	s := openCust(t, Options{Insert: TableInsert})
	rows, err := s.DB.Query(`SELECT id FROM Customer WHERE Address_City_v = 'Seattle'`)
	if err != nil {
		t.Fatal(err)
	}
	johnID := rows.Data[0][0].MustInt()
	n, err := s.CopySubtrees("Order", "Date_v = '2000-07-04'", johnID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("copied %d", n)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		city := c.FirstChildNamed("Address").FirstChildNamed("City").TextContent()
		orders := len(c.ChildElementsNamed("Order"))
		switch city {
		case "Seattle":
			if orders != 3 {
				t.Errorf("Seattle John has %d orders, want 3", orders)
			}
		case "Portland":
			if orders != 1 {
				t.Errorf("Mary has %d orders, want 1 (copy semantics)", orders)
			}
		}
	}
}

func TestASRMaintainedAcrossInsertThenDelete(t *testing.T) {
	s := openCust(t, Options{Delete: ASRDelete, Insert: ASRInsert})
	if _, err := s.CopySubtrees("Customer", "Name_v = 'John'", 1); err != nil {
		t.Fatal(err)
	}
	// Delete every John (original and copies) through the ASR.
	n, err := s.DeleteSubtrees("Customer", "Name_v = 'John'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("deleted %d Johns, want 4", n)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Root.ChildElementsNamed("Customer")); got != 1 {
		t.Errorf("customers left = %d, want 1", got)
	}
	// ASR still answers path queries correctly after maintenance.
	rows, err := s.DB.Query(`SELECT COUNT(*) FROM ASR WHERE mark = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].MustInt() != 0 {
		t.Error("marks left behind")
	}
}

func TestInsertInlinedWarnsOnOccupied(t *testing.T) {
	s := openCust(t, Options{})
	// Every customer already has a Name: inserting over it must fail (§6.2).
	if _, err := s.InsertInlined("Customer", []string{"Name"}, "Impostor", ""); err == nil {
		t.Error("insert over existing 1:1 content should fail")
	}
	// Status is optional; order 11 ('shipped') has one, the others too —
	// clear Mary's first, then insert.
	if _, err := s.DeleteInlined("Order", []string{"Status"}, "Date_v = '2000-07-04'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertInlined("Order", []string{"Status"}, "pending", "Date_v = '2000-07-04'"); err != nil {
		t.Fatal(err)
	}
	rows, _ := s.DB.Query(`SELECT Status_v FROM Order_t WHERE Date_v = '2000-07-04'`)
	if rows.Data[0][0] != relational.Text("pending") {
		t.Errorf("status = %v", rows.Data[0][0])
	}
}

// TestExample9SQL runs Example 9 through the XQuery-to-SQL translator.
func TestExample9SQL(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger})
	n, err := s.ExecString(`
FOR $d IN document("custdb.xml")/CustDB,
    $c IN $d/Customer[Name="John"]
UPDATE $d {
    DELETE $c
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // one target tuple (the CustDB root)
		t.Errorf("targets = %d", n)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	cs := doc.Root.ChildElementsNamed("Customer")
	if len(cs) != 1 || cs[0].FirstChildNamed("Name").TextContent() != "Mary" {
		t.Errorf("remaining customers wrong")
	}
}

// TestExample8SQL runs the Example 8 pattern: the outer operation changes
// the Status the nested selection depends on; because all bindings are
// computed before execution (§6.3), the nested update still applies.
func TestExample8SQL(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger})
	n, err := s.ExecString(`
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"],
    $st IN $o/Status
UPDATE $o {
    REPLACE $st WITH <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("targets = %d, want 1", n)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	var suspended, recalled int
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name == "Status" && e.TextContent() == "suspended" {
			suspended++
		}
		if e.Name == "comment" && e.TextContent() == "recalled" {
			recalled++
		}
		return true
	})
	if suspended != 1 {
		t.Errorf("suspended orders = %d, want 1", suspended)
	}
	if recalled != 1 {
		t.Errorf("recalled comments = %d, want 1 (nested binding must precede outer execution)", recalled)
	}
}

func TestExecInsertSubtreeLiteral(t *testing.T) {
	s := openCust(t, Options{})
	_, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"]
UPDATE $c {
    INSERT <Order><Date>2001-01-01</Date><OrderLine><ItemName>saw</ItemName><Qty>1</Qty></OrderLine></Order>
}`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Name").TextContent() != "Mary" {
			continue
		}
		orders := c.ChildElementsNamed("Order")
		if len(orders) != 2 {
			t.Fatalf("Mary has %d orders, want 2", len(orders))
		}
	}
}

func TestExecDeleteAttributeViaQuery(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (item*)>
<!ELEMENT item (name)>
<!ELEMENT name (#PCDATA)>
<!ATTLIST item kind CDATA #IMPLIED tag CDATA #IMPLIED>
`)
	doc, err := xmltree.ParseWith(`<root><item kind="a" tag="x"><name>one</name></item><item kind="b"><name>two</name></item></root>`,
		xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.ExecString(`
FOR $i IN document("d.xml")/root/item[@kind="a"],
    $k IN $i/@tag
UPDATE $i {
    DELETE $k
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("targets = %d", n)
	}
	re, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	items := re.Root.ChildElementsNamed("item")
	if _, ok := items[0].AttrValue("tag"); ok {
		t.Error("tag attribute survived")
	}
	if v, _ := items[0].AttrValue("kind"); v != "a" {
		t.Error("kind attribute disturbed")
	}
}

func TestExecInsertAttribute(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item level CDATA #IMPLIED>
`)
	doc, err := xmltree.ParseWith(`<root><item>x</item></root>`, xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(`
FOR $i IN document("d.xml")/root/item
UPDATE $i { INSERT new_attribute(level, "7") }`); err != nil {
		t.Fatal(err)
	}
	re, _ := s.Reconstruct()
	if v, _ := re.Root.ChildElementsNamed("item")[0].AttrValue("level"); v != "7" {
		t.Errorf("level = %q", v)
	}
	// Second insert over the same attribute fails (§3.2).
	if _, err := s.ExecString(`
FOR $i IN document("d.xml")/root/item
UPDATE $i { INSERT new_attribute(level, "8") }`); err == nil {
		t.Error("duplicate attribute insert should fail")
	}
}

func TestOrderColumnPositionalInsert(t *testing.T) {
	s := openCust(t, Options{OrderColumn: true})
	// Insert a new order before each ready order of Seattle John.
	_, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Address/City="Seattle"],
    $o IN $c/Order[Status="ready"]
UPDATE $c {
    INSERT <Order><Date>1999-12-31</Date></Order> BEFORE $o
}`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Address").FirstChildNamed("City").TextContent() != "Seattle" {
			continue
		}
		orders := c.ChildElementsNamed("Order")
		if len(orders) != 3 {
			t.Fatalf("orders = %d, want 3", len(orders))
		}
		if orders[0].FirstChildNamed("Date").TextContent() != "1999-12-31" {
			t.Errorf("new order not first: %s", orders[0].FirstChildNamed("Date").TextContent())
		}
		if orders[1].FirstChildNamed("Date").TextContent() != "2000-05-01" {
			t.Errorf("ready order displaced wrongly")
		}
	}
}

func TestPositionalInsertWithoutOrderColumnFails(t *testing.T) {
	s := openCust(t, Options{})
	_, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"],
    $o IN $c/Order
UPDATE $c {
    INSERT <Order><Date>1999-12-31</Date></Order> BEFORE $o
}`)
	if err == nil || !strings.Contains(err.Error(), "OrderColumn") {
		t.Errorf("expected order-column error, got %v", err)
	}
}

func TestIndexPredicateWithOrderColumn(t *testing.T) {
	s := openCust(t, Options{OrderColumn: true, Delete: PerTupleTrigger})
	// Delete the first order of each customer.
	n, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer,
    $o IN $c/Order
WHERE $o.index() = 0
UPDATE $c {
    DELETE $o
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("targets = %d, want 3", n)
	}
	doc, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range doc.Root.ChildElementsNamed("Customer") {
		counts[c.FirstChildNamed("Address").FirstChildNamed("City").TextContent()] = len(c.ChildElementsNamed("Order"))
	}
	if counts["Seattle"] != 1 || counts["Portland"] != 0 {
		t.Errorf("order counts = %v", counts)
	}
}

func TestRenameInlined(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (entry*)>
<!ELEMENT entry (name?, title?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`)
	doc, err := xmltree.ParseWith(`<root><entry><name>alpha</name></entry><entry><name>beta</name></entry></root>`,
		xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.DB.ResetStats()
	n, err := s.RenameInlined("entry", []string{"name"}, "title", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("renamed %d tuples", n)
	}
	// §6.3: one statement, no new ids.
	if st := s.DB.Stats(); st.Statements != 1 {
		t.Errorf("rename used %d statements", st.Statements)
	}
	re, _ := s.Reconstruct()
	for _, e := range re.Root.ChildElementsNamed("entry") {
		if e.FirstChildNamed("name") != nil || e.FirstChildNamed("title") == nil {
			t.Error("rename did not move content")
		}
	}
}

func TestExecRenameViaQuery(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (entry*)>
<!ELEMENT entry (name?, title?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`)
	doc, _ := xmltree.ParseWith(`<root><entry><name>alpha</name></entry></root>`,
		xmltree.ParseOptions{TrimText: true, DTD: dtd})
	s, err := Open(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(`
FOR $e IN document("d.xml")/root/entry,
    $n IN $e/name
UPDATE $e { RENAME $n TO title }`); err != nil {
		t.Fatal(err)
	}
	re, _ := s.Reconstruct()
	if re.Root.ChildElementsNamed("entry")[0].FirstChildNamed("title") == nil {
		t.Error("rename via query failed")
	}
}

func TestReplaceSubtrees(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger, Insert: TableInsert})
	lit := xmltree.MustParse(`<Order><Date>2002-02-02</Date></Order>`).Root
	n, err := s.ReplaceSubtrees("Order", "Status_v = 'shipped'", lit)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("replaced %d", n)
	}
	doc, _ := s.Reconstruct()
	var dates []string
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name == "Date" {
			dates = append(dates, e.TextContent())
		}
		return true
	})
	joined := strings.Join(dates, ",")
	if !strings.Contains(joined, "2002-02-02") || strings.Contains(joined, "2000-06-12") {
		t.Errorf("dates = %v", dates)
	}
}

func TestQuerySubtrees(t *testing.T) {
	s := openCust(t, Options{})
	stmt := mustParse(t, `
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"]
RETURN $c`)
	subs, err := s.QuerySubtrees(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("returned %d subtrees", len(subs))
	}
	for _, e := range subs {
		if e.FirstChildNamed("Name").TextContent() != "John" {
			t.Error("wrong customer")
		}
	}
}

func mustParse(t testing.TB, q string) *xquery.Statement {
	t.Helper()
	s, err := xquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenRequiresDTD(t *testing.T) {
	doc := xmltree.MustParse(`<a><b/></a>`)
	if _, err := Open(doc, Options{}); err == nil {
		t.Error("Open without DTD should fail")
	}
}

func TestUnsupportedTranslations(t *testing.T) {
	s := openCust(t, Options{})
	bad := []string{
		// LET unsupported relationally.
		`FOR $c IN document("x")/CustDB LET $o := $c/Customer UPDATE $c { DELETE $o }`,
		// index() without order column.
		`FOR $c IN document("x")/CustDB/Customer WHERE $c.index() = 0 UPDATE $c { DELETE $c }`,
		// Wrong root.
		`FOR $c IN document("x")/Bogus/Customer UPDATE $c { INSERT new_attribute(a,"1") }`,
	}
	for _, q := range bad {
		if _, err := s.ExecString(q); err == nil {
			t.Errorf("ExecString(%q) succeeded, want error", q)
		}
	}
}

// TestShredInternsText: shredding a document routes every stored TEXT value
// through the intern table (repeated names and states hit, distinct strings
// miss) — the symbol fast paths downstream depend on this happening at load
// time, so pin it.
func TestShredInternsText(t *testing.T) {
	s := openCust(t, Options{})
	st := s.DB.Stats()
	if st.InternMisses == 0 {
		t.Error("shred minted no intern symbols — TEXT values are not being interned at load")
	}
	if st.InternHits == 0 {
		t.Error("shred recorded no intern hits — repeated document text should share symbols")
	}
}

package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

// storeDump renders the store's observable state: every data table's rows
// in id order plus the tuple count and id counter. Equal dumps mean a
// failed update left no trace.
func storeDump(t *testing.T, s *Store) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "tuples=%d nextID=%d\n", s.TupleCount(), s.NextID())
	for _, name := range s.DB.TableNames() {
		rows, err := s.DB.Query(fmt.Sprintf("SELECT * FROM %s", name))
		if err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
		lines := make([]string, 0, len(rows.Data))
		for _, r := range rows.Data {
			var l strings.Builder
			for _, v := range r {
				fmt.Fprintf(&l, " %v", v)
			}
			lines = append(lines, l.String())
		}
		// Sorted in Go: the ASR table has no id column to order by.
		sort.Strings(lines)
		fmt.Fprintf(&b, "== %s ==\n%s\n", name, strings.Join(lines, "\n"))
	}
	return b.String()
}

// TestFailedSubOperationRollsBackUpdate is the engine-level partial-mutation
// regression test: an Example-8-style statement whose later sub-operation
// fails at execution time (an inlined insert over existing content — only
// detectable when it runs) must leave the store's tuple count, every table,
// and the id counter exactly as they were, instead of stranding the earlier
// sub-operations' effects.
func TestFailedSubOperationRollsBackUpdate(t *testing.T) {
	for _, m := range allDeleteMethods {
		s := openCust(t, Options{Delete: m})
		before := storeDump(t, s)
		// Sub-op 1 deletes every order (succeeds); sub-op 2 inserts a Name
		// element, which fails at execution time because every customer
		// already has one (occurs at most once in the DTD).
		_, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer, $o IN $c/Order
UPDATE $c {
    DELETE $o,
    INSERT <Name>Zed</Name>
}`)
		if err == nil {
			t.Fatalf("%v: expected execution-phase failure", m)
		}
		if !strings.Contains(err.Error(), "existing") {
			t.Fatalf("%v: unexpected error: %v", m, err)
		}
		if got := storeDump(t, s); got != before {
			t.Errorf("%v: store changed across failed update:\n--- before ---\n%s--- after ---\n%s", m, before, got)
		}
		// The store still functions: the delete alone succeeds.
		if _, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer, $o IN $c/Order
UPDATE $c { DELETE $o }`); err != nil {
			t.Fatalf("%v: follow-up update: %v", m, err)
		}
	}
}

// TestFailedCopyRollsBackAndRestoresIDs: a CopySubtrees that fails midway
// must leave no partial copy and return the reserved ids, so a retry
// allocates the same range (gapless allocation survives failures).
func TestFailedCopyRollsBackAndRestoresIDs(t *testing.T) {
	s := openCust(t, Options{Insert: TupleInsert})
	before := storeDump(t, s)
	// A bad WHERE fragment fails the outer-union read after the transaction
	// opens.
	if _, err := s.CopySubtrees("Order", "nosuchcol = 1", 1); err == nil {
		t.Fatalf("expected failure")
	}
	if got := storeDump(t, s); got != before {
		t.Errorf("failed copy left a trace:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

// TestConcurrentSOUReadersWithEngineWriter races document-order Sorted
// Outer Union reconstructions against a writer running engine updates
// (pos-renumber positional inserts, deletes, and a failing statement per
// cycle). Readers must always observe a committed state: every
// reconstructed customer stays well-formed, and the store returns to a
// fixed point at quiesce.
func TestConcurrentSOUReadersWithEngineWriter(t *testing.T) {
	s := openCust(t, Options{Delete: PerTupleTrigger, OrderColumn: true})
	query := mustParse(t, `FOR $c IN document("custdb.xml")/CustDB/Customer RETURN $c`)
	base, err := s.QuerySubtrees(query)
	if err != nil {
		t.Fatal(err)
	}
	baseCount := len(base)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 5)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 40; i++ {
			// Insert an order under Mary (pos renumber via InsertContentAt),
			// then delete it again — net zero per cycle.
			if _, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"]
UPDATE $c { INSERT <Order><Date>2099-01-01</Date></Order> }`); err != nil {
				errs <- err
				return
			}
			if _, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="Mary"], $o IN $c/Order[Date="2099-01-01"]
UPDATE $c { DELETE $o }`); err != nil {
				errs <- err
				return
			}
			// A failing multi-sub-op statement: all-or-nothing, no trace.
			if _, err := s.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer, $o IN $c/Order
UPDATE $c { DELETE $o, INSERT <Name>Zed</Name> }`); err == nil {
				errs <- fmt.Errorf("expected failing statement to fail")
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				subs, err := s.QuerySubtrees(query)
				if err != nil {
					errs <- err
					return
				}
				if len(subs) != baseCount {
					errs <- fmt.Errorf("reader saw %d customers, want %d", len(subs), baseCount)
					return
				}
				for _, e := range subs {
					if e.Name != "Customer" {
						errs <- fmt.Errorf("malformed reconstruction root %q", e.Name)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Quiesce: the writer's cycles net to zero orders added or removed.
	after, err := s.QuerySubtrees(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != baseCount {
		t.Errorf("customer count drifted: %d -> %d", baseCount, len(after))
	}
	for i := range after {
		if got, want := xmltree.Serialize(after[i]), xmltree.Serialize(base[i]); got != want {
			t.Errorf("customer %d drifted:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestFailedCopyAllMethods: every insert method's failed copy must leave no
// trace — in particular the table method's CREATE TEMP TABLE work areas
// must be dropped by the rollback, or the retry would fail with "table
// already exists".
func TestFailedCopyAllMethods(t *testing.T) {
	for _, m := range allInsertMethods {
		s := openCust(t, Options{Insert: m})
		// Destination: a real Customer tuple (the ASR method resolves the
		// destination's parent chain, so the root id would not do).
		rows, err := s.DB.Query(fmt.Sprintf("SELECT MIN(id) FROM %s", s.M.Table("Customer").Name))
		if err != nil {
			t.Fatal(err)
		}
		dst := rows.Data[0][0].MustInt()
		before := storeDump(t, s)
		if _, err := s.CopySubtrees("Order", "nosuchcol = 1", dst); err == nil {
			t.Fatalf("%v: expected failure", m)
		}
		if got := storeDump(t, s); got != before {
			t.Errorf("%v: failed copy left a trace:\n--- before ---\n%s--- after ---\n%s", m, before, got)
		}
		// The retry with a valid condition succeeds.
		if _, err := s.CopySubtrees("Order", "Date_v = '2000-07-04'", dst); err != nil {
			t.Errorf("%v: retry after failed copy: %v", m, err)
		}
	}
}

// TestAtomicallyPanicReleasesLock: a panic inside a transactional section
// must roll back and release the writer lock, leaving the store usable
// after the caller recovers.
func TestAtomicallyPanicReleasesLock(t *testing.T) {
	s := openCust(t, Options{})
	before := storeDump(t, s)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic to propagate")
			}
		}()
		s.atomically(func() error {
			if _, err := s.sql().Exec(fmt.Sprintf("DELETE FROM %s", s.M.Table("Order").Name)); err != nil {
				t.Fatal(err)
			}
			panic("boom")
		})
	}()
	if got := storeDump(t, s); got != before {
		t.Errorf("panic left a trace:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

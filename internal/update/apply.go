package update

import (
	"fmt"

	"repro/internal/xmltree"
)

// Executor applies sequences of primitive operations to a document with the
// paper's semantics: all Sub-Update bindings are made over the input before
// any updates take place, content is evaluated per target before the sequence
// executes, and a binding that has been deleted cannot be used by later
// operations in the sequence (except as content).
type Executor struct {
	Model Model
	// Doc, when non-nil, has its ID registry maintained across element
	// insertions and deletions.
	Doc *xmltree.Document
	// Observer, when non-nil, is invoked immediately before each primitive
	// operation executes, with the tree still in its pre-operation state.
	// The delta package uses this to record update logs for transmission
	// (change deltas, §1).
	Observer func(target *xmltree.Element, op Op)

	deleted map[any]bool
	// deletedRefs records removed (list, id) reference entries.
	deletedRefs map[refKey]bool
	// refSnapshot pins the ID each bound reference entry had at binding
	// time, so later index shifts in the same list do not retarget it.
	refSnapshot map[refKey]string
}

type refKey struct {
	list  *xmltree.RefList
	index int
}

// NewExecutor returns an executor for the given model. doc may be nil.
func NewExecutor(model Model, doc *xmltree.Document) *Executor {
	return &Executor{
		Model:       model,
		Doc:         doc,
		deleted:     make(map[any]bool),
		deletedRefs: make(map[refKey]bool),
		refSnapshot: make(map[refKey]string),
	}
}

// Apply executes the operation sequence against target. The sequence is
// first resolved — Sub-Update bindings are computed bottom-up over the
// unmodified input — and then executed consecutively.
func (x *Executor) Apply(target *xmltree.Element, ops []Op) error {
	plan, err := x.resolve(target, ops)
	if err != nil {
		return err
	}
	return x.execute(plan)
}

// resolvedUpdate is a fully bound update: a target plus primitive operations
// and nested resolved updates in sequence order.
type resolvedUpdate struct {
	target *xmltree.Element
	ops    []resolvedOp
}

type resolvedOp struct {
	prim Op              // non-nil for a primitive operation
	sub  *resolvedUpdate // non-nil for a resolved Sub-Update
}

func (x *Executor) resolve(target *xmltree.Element, ops []Op) (*resolvedUpdate, error) {
	ru := &resolvedUpdate{target: target}
	for _, op := range ops {
		switch o := op.(type) {
		case SubUpdate:
			if o.Bind == nil || o.Ops == nil {
				return nil, fmt.Errorf("update: sub-update missing Bind or Ops")
			}
			subs, err := o.Bind(target)
			if err != nil {
				return nil, fmt.Errorf("update: sub-update binding: %w", err)
			}
			for _, s := range subs {
				subOps, err := o.Ops(s)
				if err != nil {
					return nil, fmt.Errorf("update: sub-update operations: %w", err)
				}
				nested, err := x.resolve(s, subOps)
				if err != nil {
					return nil, err
				}
				ru.ops = append(ru.ops, resolvedOp{sub: nested})
			}
		default:
			x.snapshotOpRefs(op)
			ru.ops = append(ru.ops, resolvedOp{prim: op})
		}
	}
	return ru, nil
}

// snapshotOpRefs pins the IDs of reference bindings mentioned by an op.
func (x *Executor) snapshotOpRefs(op Op) {
	pin := func(t Target) {
		if r, ok := t.(xmltree.Ref); ok {
			k := refKey{r.List, r.Index}
			if _, done := x.refSnapshot[k]; !done && r.Index >= 0 && r.Index < len(r.List.IDs) {
				x.refSnapshot[k] = r.List.IDs[r.Index]
			}
		}
	}
	switch o := op.(type) {
	case Delete:
		pin(o.Child)
	case Rename:
		pin(o.Child)
	case InsertBefore:
		pin(o.Ref)
	case InsertAfter:
		pin(o.Ref)
	case Replace:
		pin(o.Child)
	}
}

func (x *Executor) execute(ru *resolvedUpdate) error {
	for _, rop := range ru.ops {
		if rop.sub != nil {
			if x.isDeletedElement(rop.sub.target) {
				return fmt.Errorf("update: sub-update target was deleted by an earlier operation")
			}
			if err := x.execute(rop.sub); err != nil {
				return err
			}
			continue
		}
		if err := x.executePrim(ru.target, rop.prim); err != nil {
			return fmt.Errorf("update: %s: %w", OpName(rop.prim), err)
		}
	}
	return nil
}

func (x *Executor) executePrim(target *xmltree.Element, op Op) error {
	if x.isDeletedElement(target) {
		return fmt.Errorf("target element was deleted by an earlier operation")
	}
	if x.Observer != nil {
		x.Observer(target, op)
	}
	switch o := op.(type) {
	case Delete:
		return x.execDelete(target, o.Child)
	case Rename:
		return x.execRename(target, o.Child, o.Name)
	case Insert:
		return x.execInsert(target, o.Content)
	case InsertBefore:
		return x.execPositional(target, o.Ref, o.Content, true)
	case InsertAfter:
		return x.execPositional(target, o.Ref, o.Content, false)
	case Replace:
		return x.execReplace(target, o.Child, o.Content)
	default:
		return fmt.Errorf("unsupported operation %T", op)
	}
}

// isDeletedElement reports whether e or any ancestor was deleted earlier in
// this update's execution.
func (x *Executor) isDeletedElement(e *xmltree.Element) bool {
	for n := e; n != nil; n = n.Parent() {
		if x.deleted[n] {
			return true
		}
	}
	return false
}

func (x *Executor) checkUsable(t Target) error {
	switch v := t.(type) {
	case *xmltree.Element:
		if x.isDeletedElement(v) {
			return fmt.Errorf("binding refers to deleted element <%s>", v.Name)
		}
	case *xmltree.Attr:
		if x.deleted[v] || (v.Owner() != nil && x.isDeletedElement(v.Owner())) {
			return fmt.Errorf("binding refers to deleted attribute %q", v.Name)
		}
	case *xmltree.RefList:
		if x.deleted[v] || (v.Owner() != nil && x.isDeletedElement(v.Owner())) {
			return fmt.Errorf("binding refers to deleted reference list %q", v.Name)
		}
	case *xmltree.Text:
		if x.deleted[v] || (v.Parent() != nil && x.isDeletedElement(v.Parent())) {
			return fmt.Errorf("binding refers to deleted PCDATA")
		}
	case xmltree.Ref:
		if x.deleted[v.List] {
			return fmt.Errorf("binding refers to deleted reference list %q", v.List.Name)
		}
		if id, ok := x.refSnapshot[refKey{v.List, v.Index}]; ok {
			if x.deletedRefs[refKey{v.List, v.Index}] {
				return fmt.Errorf("binding refers to deleted reference %q", id)
			}
		}
		if v.List.Owner() != nil && x.isDeletedElement(v.List.Owner()) {
			return fmt.Errorf("binding refers to reference on deleted element")
		}
	}
	return nil
}

// resolveRefIndex returns the current index of a bound reference entry,
// preferring the snapshot ID captured at binding time.
func (x *Executor) resolveRefIndex(r xmltree.Ref) (int, error) {
	want, pinned := x.refSnapshot[refKey{r.List, r.Index}]
	if !pinned {
		if r.Index >= 0 && r.Index < len(r.List.IDs) {
			return r.Index, nil
		}
		return -1, fmt.Errorf("reference index %d out of range", r.Index)
	}
	if r.Index >= 0 && r.Index < len(r.List.IDs) && r.List.IDs[r.Index] == want {
		return r.Index, nil
	}
	for i, id := range r.List.IDs {
		if id == want {
			return i, nil
		}
	}
	return -1, fmt.Errorf("reference %q no longer present in list %q", want, r.List.Name)
}

func (x *Executor) execDelete(target *xmltree.Element, child Target) error {
	if err := x.checkUsable(child); err != nil {
		return err
	}
	switch c := child.(type) {
	case *xmltree.Element:
		if c.Parent() != target {
			return fmt.Errorf("element <%s> is not a child of target <%s>", c.Name, target.Name)
		}
		target.RemoveChild(c)
		x.deleted[c] = true
		x.unregisterSubtree(c)
		return nil
	case *xmltree.Text:
		if c.Parent() != target {
			return fmt.Errorf("PCDATA is not a child of target <%s>", target.Name)
		}
		target.RemoveChild(c)
		x.deleted[c] = true
		return nil
	case *xmltree.Attr:
		if c.Owner() != target {
			return fmt.Errorf("attribute %q does not belong to target <%s>", c.Name, target.Name)
		}
		target.RemoveAttr(c)
		x.deleted[c] = true
		return nil
	case *xmltree.RefList:
		if c.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", c.Name, target.Name)
		}
		target.RemoveRefList(c)
		x.deleted[c] = true
		return nil
	case xmltree.Ref:
		if c.List.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", c.List.Name, target.Name)
		}
		idx, err := x.resolveRefIndex(c)
		if err != nil {
			return err
		}
		if !target.RemoveRefEntry(xmltree.Ref{List: c.List, Index: idx}) {
			return fmt.Errorf("reference entry not removable")
		}
		x.deletedRefs[refKey{c.List, c.Index}] = true
		return nil
	default:
		return fmt.Errorf("cannot delete object of type %T", child)
	}
}

func (x *Executor) execRename(target *xmltree.Element, child Target, name string) error {
	if err := x.checkUsable(child); err != nil {
		return err
	}
	switch c := child.(type) {
	case *xmltree.Element:
		if c.Parent() != target {
			return fmt.Errorf("element <%s> is not a child of target <%s>", c.Name, target.Name)
		}
	case *xmltree.Attr:
		if c.Owner() != target {
			return fmt.Errorf("attribute %q does not belong to target <%s>", c.Name, target.Name)
		}
	case *xmltree.RefList:
		if c.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", c.Name, target.Name)
		}
	case xmltree.Ref:
		// Renaming an individual IDREF renames the entire IDREFS (§3.2).
		if c.List.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", c.List.Name, target.Name)
		}
		return xmltree.Rename(c.List, name)
	}
	return xmltree.Rename(child, name)
}

func (x *Executor) execInsert(target *xmltree.Element, content Content) error {
	switch c := content.(type) {
	case NewAttribute:
		_, err := target.SetAttr(c.Name, c.Value)
		return err
	case NewRef:
		target.AddRef(c.Name, c.ID)
		return nil
	case ElementContent:
		e := x.materialize(c.Element)
		target.AppendChild(e)
		x.registerSubtree(e)
		return nil
	case PCDATA:
		target.AppendChild(xmltree.NewText(c.Data))
		return nil
	default:
		return fmt.Errorf("unsupported content type %T", content)
	}
}

// materialize returns content ready for attachment: attached elements are
// deep-copied (copy semantics), detached ones are used directly.
func (x *Executor) materialize(e *xmltree.Element) *xmltree.Element {
	if e.Parent() != nil {
		return e.Clone()
	}
	return e
}

func (x *Executor) execPositional(target *xmltree.Element, ref Target, content Content, before bool) error {
	if x.Model != Ordered {
		return fmt.Errorf("positional insertion is defined only for the ordered execution model")
	}
	if err := x.checkUsable(ref); err != nil {
		return err
	}
	switch r := ref.(type) {
	case *xmltree.Element, *xmltree.Text:
		node := r.(xmltree.Node)
		if node.Parent() != target {
			return fmt.Errorf("reference node is not a child of target <%s>", target.Name)
		}
		var n xmltree.Node
		switch c := content.(type) {
		case ElementContent:
			e := x.materialize(c.Element)
			x.registerSubtree(e)
			n = e
		case PCDATA:
			n = xmltree.NewText(c.Data)
		default:
			return fmt.Errorf("positional insertion relative to a node requires element or PCDATA content, got %T", content)
		}
		if before {
			return target.InsertBefore(node, n)
		}
		return target.InsertAfter(node, n)
	case xmltree.Ref:
		if r.List.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", r.List.Name, target.Name)
		}
		id, err := contentAsID(content, r.List.Name)
		if err != nil {
			return err
		}
		idx, err := x.resolveRefIndex(r)
		if err != nil {
			return err
		}
		if !before {
			idx++
		}
		r.List.InsertRefAt(idx, id)
		return nil
	default:
		return fmt.Errorf("positional insertion relative to %T is not defined", ref)
	}
}

// contentAsID extracts an ID for insertion into the reference list named
// label. Example 3 passes a bare string; new_ref(label, id) is also accepted
// when its label matches.
func contentAsID(content Content, label string) (string, error) {
	switch c := content.(type) {
	case PCDATA:
		return c.Data, nil
	case NewRef:
		if c.Name != label {
			return "", fmt.Errorf("reference label %q does not match list %q", c.Name, label)
		}
		return c.ID, nil
	case NewAttribute:
		// Example 4 uses new_attribute(managers, "jones1") for a reference;
		// accept it when the label matches.
		if c.Name != label {
			return "", fmt.Errorf("reference label %q does not match list %q", c.Name, label)
		}
		return c.Value, nil
	default:
		return "", fmt.Errorf("insertion into an IDREFS requires an ID, got %T", content)
	}
}

func (x *Executor) execReplace(target *xmltree.Element, child Target, content Content) error {
	if err := x.checkUsable(child); err != nil {
		return err
	}
	switch c := child.(type) {
	case *xmltree.Element, *xmltree.Text:
		if x.Model == Ordered {
			if err := x.execPositional(target, child, content, true); err != nil {
				return err
			}
			return x.execDelete(target, child)
		}
		if err := x.execInsert(target, content); err != nil {
			return err
		}
		return x.execDelete(target, child)
	case *xmltree.Attr:
		switch nc := content.(type) {
		case NewAttribute:
			if err := x.execDelete(target, child); err != nil {
				return err
			}
			_, err := target.SetAttr(nc.Name, nc.Value)
			return err
		default:
			return fmt.Errorf("an attribute can only be replaced with an attribute, got %T", content)
		}
	case xmltree.Ref:
		// A reference binding can only be replaced with another reference of
		// the same label (§4.2.3).
		id, err := contentAsID(content, c.List.Name)
		if err != nil {
			return err
		}
		idx, err := x.resolveRefIndex(c)
		if err != nil {
			return err
		}
		c.List.IDs[idx] = id
		x.deletedRefs[refKey{c.List, c.Index}] = true
		return nil
	case *xmltree.RefList:
		id, err := contentAsID(content, c.Name)
		if err != nil {
			return err
		}
		if c.Owner() != target {
			return fmt.Errorf("reference list %q does not belong to target <%s>", c.Name, target.Name)
		}
		c.IDs = []string{id}
		return nil
	default:
		return fmt.Errorf("cannot replace object of type %T", child)
	}
}

func (x *Executor) registerSubtree(e *xmltree.Element) {
	if x.Doc == nil {
		return
	}
	xmltree.Walk(e, func(el *xmltree.Element) bool {
		if id := x.Doc.ID(el); id != "" {
			x.Doc.RegisterID(id, el)
		}
		return true
	})
}

func (x *Executor) unregisterSubtree(e *xmltree.Element) {
	if x.Doc == nil {
		return
	}
	xmltree.Walk(e, func(el *xmltree.Element) bool {
		if id := x.Doc.ID(el); id != "" {
			x.Doc.UnregisterID(id, el)
		}
		return true
	})
}

package update

import (
	"strings"
	"testing"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

// Tests focused on the ordered/unordered model distinction and the less
// common operation/content combinations of §3.2.

func TestOrderedInsertionAppends(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("lab2")
	x := NewExecutor(Ordered, doc)
	a := xmltree.NewElement("note")
	a.AppendChild(xmltree.NewText("first"))
	b := xmltree.NewElement("note")
	b.AppendChild(xmltree.NewText("second"))
	if err := x.Apply(lab, []Op{
		Insert{Content: ElementContent{Element: a}},
		Insert{Content: ElementContent{Element: b}},
	}); err != nil {
		t.Fatal(err)
	}
	kids := lab.ChildElements()
	n := len(kids)
	if kids[n-2].TextContent() != "first" || kids[n-1].TextContent() != "second" {
		t.Errorf("ordered insertions not appended in sequence: %q, %q",
			kids[n-2].TextContent(), kids[n-1].TextContent())
	}
}

func TestOrderedRefInsertionAppendsToList(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(lalab, []Op{
		Insert{Content: NewRef{Name: "managers", ID: "a1"}},
		Insert{Content: NewRef{Name: "managers", ID: "a2"}},
	}); err != nil {
		t.Fatal(err)
	}
	ids := lalab.Ref("managers").IDs
	if len(ids) != 4 || ids[2] != "a1" || ids[3] != "a2" {
		t.Errorf("managers = %v", ids)
	}
}

func TestModelString(t *testing.T) {
	if Ordered.String() != "ordered" || Unordered.String() != "unordered" {
		t.Error("Model.String wrong")
	}
}

func TestOpNames(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Delete{}, "DELETE"},
		{Rename{}, "RENAME"},
		{Insert{}, "INSERT"},
		{InsertBefore{}, "INSERT BEFORE"},
		{InsertAfter{}, "INSERT AFTER"},
		{Replace{}, "REPLACE"},
		{SubUpdate{}, "sub-update"},
	}
	for _, c := range cases {
		if got := OpName(c.op); got != c.want {
			t.Errorf("OpName(%T) = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestReplaceWholeRefList(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	m := lalab.Ref("managers")
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(lalab, []Op{
		Replace{Child: m, Content: NewRef{Name: "managers", ID: "solo"}},
	}); err != nil {
		t.Fatal(err)
	}
	if ids := lalab.Ref("managers").IDs; len(ids) != 1 || ids[0] != "solo" {
		t.Errorf("managers = %v", ids)
	}
}

func TestReplaceAttrWithElementFails(t *testing.T) {
	doc := testdocs.Bio()
	jones := doc.ByID("jones1")
	age := jones.Attr("age")
	x := NewExecutor(Ordered, doc)
	e := xmltree.NewElement("age")
	err := x.Apply(jones, []Op{Replace{Child: age, Content: ElementContent{Element: e}}})
	if err == nil {
		t.Error("replacing an attribute with an element should fail")
	}
}

func TestReplaceAttrWithAttr(t *testing.T) {
	doc := testdocs.Bio()
	jones := doc.ByID("jones1")
	age := jones.Attr("age")
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(jones, []Op{
		Replace{Child: age, Content: NewAttribute{Name: "age", Value: "33"}},
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := jones.AttrValue("age"); v != "33" {
		t.Errorf("age = %q", v)
	}
}

func TestInsertAfterRefEntry(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	first := xmltree.Ref{List: lalab.Ref("managers"), Index: 0}
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(lalab, []Op{
		InsertAfter{Ref: first, Content: PCDATA{Data: "mid"}},
	}); err != nil {
		t.Fatal(err)
	}
	ids := lalab.Ref("managers").IDs
	if len(ids) != 3 || ids[1] != "mid" {
		t.Errorf("managers = %v", ids)
	}
}

func TestPositionalInsertElementBetweenText(t *testing.T) {
	doc := xmltree.MustParse(`<p>alpha<b/>omega</p>`)
	omega := doc.Root.Children()[2].(*xmltree.Text)
	x := NewExecutor(Ordered, doc)
	mid := xmltree.NewElement("i")
	if err := x.Apply(doc.Root, []Op{
		InsertBefore{Ref: omega, Content: ElementContent{Element: mid}},
	}); err != nil {
		t.Fatal(err)
	}
	got := xmltree.Serialize(doc.Root)
	if got != `<p>alpha<b/><i/>omega</p>` {
		t.Errorf("got %s", got)
	}
}

func TestInsertAttributeRelativeFails(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	x := NewExecutor(Ordered, doc)
	err := x.Apply(lab, []Op{
		InsertBefore{Ref: name, Content: NewAttribute{Name: "a", Value: "1"}},
	})
	if err == nil {
		t.Error("positional insertion of an attribute should fail")
	}
}

func TestSubUpdateErrorsPropagate(t *testing.T) {
	doc := testdocs.Bio()
	x := NewExecutor(Ordered, doc)
	err := x.Apply(doc.Root, []Op{SubUpdate{}})
	if err == nil || !strings.Contains(err.Error(), "Bind") {
		t.Errorf("empty SubUpdate error = %v", err)
	}
}

func TestRenameAttrCollisionFails(t *testing.T) {
	doc := xmltree.MustParse(`<a x="1" y="2"/>`)
	x := NewExecutor(Ordered, doc)
	attr := doc.Root.Attr("x")
	err := x.Apply(doc.Root, []Op{Rename{Child: attr, Name: "y"}})
	if err == nil {
		t.Error("renaming onto an existing attribute should fail")
	}
}

func TestDeleteWholeRefList(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	m := lalab.Ref("managers")
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(lalab, []Op{Delete{Child: m}}); err != nil {
		t.Fatal(err)
	}
	if lalab.Ref("managers") != nil {
		t.Error("reference list still present")
	}
}

func TestContentEvaluatedBeforeSequence(t *testing.T) {
	// "content is evaluated for each target before the sequence of updates
	// is executed": inserting a copy of a node that a later op deletes must
	// capture the pre-delete content.
	doc := testdocs.Bio()
	lab2 := doc.ByID("lab2")
	name := lab2.FirstChildNamed("name")
	x := NewExecutor(Ordered, doc)
	if err := x.Apply(lab2, []Op{
		Insert{Content: ElementContent{Element: name}}, // copy (attached → clone)
		Delete{Child: name},
	}); err != nil {
		t.Fatal(err)
	}
	names := lab2.ChildElementsNamed("name")
	if len(names) != 1 || names[0].TextContent() != "PMBL" {
		t.Errorf("names = %d", len(names))
	}
}

func TestExecutorWithoutDoc(t *testing.T) {
	// An executor may run without a document (no ID maintenance).
	root := xmltree.NewElement("r")
	x := NewExecutor(Ordered, nil)
	c := xmltree.NewElement("c")
	if err := x.Apply(root, []Op{Insert{Content: ElementContent{Element: c}}}); err != nil {
		t.Fatal(err)
	}
	if len(root.ChildElements()) != 1 {
		t.Error("insert without doc failed")
	}
}

// Package update implements the primitive XML update operations of
// Tatarinov et al. (SIGMOD 2001, §3.2): Delete, Rename, Insert, InsertBefore,
// InsertAfter, Replace, and Sub-Update, under both the ordered and unordered
// execution models, with the paper's snapshot-binding semantics.
package update

import (
	"fmt"

	"repro/internal/xmltree"
)

// Model selects the execution model of §3.2.
type Model int

// Execution models.
const (
	// Ordered: non-attribute insertions append at the end; InsertBefore and
	// InsertAfter are available; Replace is InsertBefore+Delete.
	Ordered Model = iota
	// Unordered: insertion position is unspecified (this implementation
	// appends); InsertBefore/InsertAfter are rejected; Replace is
	// Insert+Delete.
	Unordered
)

func (m Model) String() string {
	if m == Unordered {
		return "unordered"
	}
	return "ordered"
}

// Target is an object an operation manipulates: *xmltree.Element,
// *xmltree.Attr, xmltree.Ref, *xmltree.RefList, or *xmltree.Text.
type Target = any

// Content is what an Insert or Replace produces: one of the constructor
// types below, a *xmltree.Element (copied if attached), or plain PCDATA.
type Content interface{ isContent() }

// NewAttribute constructs an attribute to insert — the paper's
// new_attribute(name, value).
type NewAttribute struct {
	Name  string
	Value string
}

func (NewAttribute) isContent() {}

// NewRef constructs a reference to insert — the paper's new_ref(label, id).
type NewRef struct {
	Name string
	ID   string
}

func (NewRef) isContent() {}

// ElementContent inserts an element subtree. If the element is attached to a
// document it is deep-copied first (copy semantics, §6.2).
type ElementContent struct {
	Element *xmltree.Element
}

func (ElementContent) isContent() {}

// PCDATA inserts a text node — or, when inserted relative to an IDREF entry,
// a bare ID (Example 3 inserts "jones1" before a managers reference).
type PCDATA struct {
	Data string
}

func (PCDATA) isContent() {}

// Op is one primitive sub-operation within an update.
type Op interface{ isOp() }

// Delete removes child from the target object. Valid child types: PCDATA,
// attribute, IDREF within an IDREFS (removing only the single entry), a whole
// reference list, and element.
type Delete struct {
	Child Target
}

func (Delete) isOp() {}

// Rename gives a non-PCDATA child of the target a new name. An individual
// IDREF within an IDREFS cannot be renamed; renaming applies to the entire
// IDREFS.
type Rename struct {
	Child Target
	Name  string
}

func (Rename) isOp() {}

// Insert adds new content to the target. Inserting an attribute whose name
// already exists fails; inserting a reference whose name matches an existing
// IDREFS appends an entry to it.
type Insert struct {
	Content Content
}

func (Insert) isOp() {}

// InsertBefore inserts content directly before Ref within the target
// (ordered model only). If Ref is a child element or PCDATA, Content must be
// an element or PCDATA; if Ref is an entry in an IDREFS, Content must be an
// ID and is inserted ahead of it in the list.
type InsertBefore struct {
	Ref     Target
	Content Content
}

func (InsertBefore) isOp() {}

// InsertAfter is defined analogously to InsertBefore.
type InsertAfter struct {
	Ref     Target
	Content Content
}

func (InsertAfter) isOp() {}

// Replace atomically replaces child with content: InsertBefore+Delete in the
// ordered model, Insert+Delete in the unordered model. A reference binding
// can only be replaced by a reference with the same label.
type Replace struct {
	Child   Target
	Content Content
}

func (Replace) isOp() {}

// SubUpdate recursively invokes an update at a deeper level: starting at the
// target element it binds Pattern's matches (filtered by the predicates
// compiled into the pattern), and applies Ops to each binding. All bindings
// are made over the input before any updates take place (§3.2); the executor
// realizes this by pre-binding before executing the sequence.
type SubUpdate struct {
	// Bind computes the sub-targets from the current target. It is invoked
	// during the binding phase, before any mutation.
	Bind func(target *xmltree.Element) ([]*xmltree.Element, error)
	// Ops builds the operation list for one bound sub-target. It is also
	// invoked during the binding phase.
	Ops func(sub *xmltree.Element) ([]Op, error)
}

func (SubUpdate) isOp() {}

// OpName names an operation for error messages.
func OpName(op Op) string {
	switch op.(type) {
	case Delete:
		return "DELETE"
	case Rename:
		return "RENAME"
	case Insert:
		return "INSERT"
	case InsertBefore:
		return "INSERT BEFORE"
	case InsertAfter:
		return "INSERT AFTER"
	case Replace:
		return "REPLACE"
	case SubUpdate:
		return "sub-update"
	default:
		return fmt.Sprintf("%T", op)
	}
}

package update

import (
	"strings"
	"testing"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func ordered(doc *xmltree.Document) *Executor { return NewExecutor(Ordered, doc) }

// TestExample1Delete reproduces Example 1: delete the paper's category
// attribute, its biologist reference to smith1, and its title subelement.
func TestExample1Delete(t *testing.T) {
	doc := testdocs.Bio()
	paper := doc.ByID("Smith991231")
	cat := paper.Attr("category")
	bio := xmltree.Ref{List: paper.Ref("biologist"), Index: 0}
	title := paper.FirstChildNamed("title")

	x := ordered(doc)
	err := x.Apply(paper, []Op{
		Delete{Child: cat},
		Delete{Child: bio},
		Delete{Child: title},
	})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Attr("category") != nil {
		t.Error("category still present")
	}
	if paper.Ref("biologist") != nil {
		t.Error("biologist reference still present")
	}
	if paper.FirstChildNamed("title") != nil {
		t.Error("title still present")
	}
	// The source reference must be untouched.
	if paper.Ref("source") == nil {
		t.Error("source reference was disturbed")
	}
}

// TestExample2Insert reproduces Example 2: insert an age attribute, two
// worksAt references, and a firstname subelement into biologist smith1.
func TestExample2Insert(t *testing.T) {
	doc := testdocs.Bio()
	smith := doc.ByID("smith1")
	first := xmltree.NewElement("firstname")
	first.AppendChild(xmltree.NewText("Jeff"))

	x := ordered(doc)
	err := x.Apply(smith, []Op{
		Insert{Content: NewAttribute{Name: "age", Value: "29"}},
		Insert{Content: NewRef{Name: "worksAt", ID: "ucla"}},
		Insert{Content: NewRef{Name: "worksAt", ID: "baselab"}},
		Insert{Content: ElementContent{Element: first}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := smith.AttrValue("age"); v != "29" {
		t.Errorf("age = %q", v)
	}
	// Ordered model: each successive reference appends to the worksAt list.
	w := smith.Ref("worksAt")
	if w == nil || len(w.IDs) != 2 || w.IDs[0] != "ucla" || w.IDs[1] != "baselab" {
		t.Errorf("worksAt = %+v", w)
	}
	// firstname appears after existing subelements.
	kids := smith.ChildElements()
	if kids[len(kids)-1].Name != "firstname" {
		t.Errorf("firstname not appended: %v", kids[len(kids)-1].Name)
	}
}

// TestExample3PositionalInsert reproduces Example 3: add a street after the
// name element and "jones1" as the first managers reference.
func TestExample3PositionalInsert(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	sref := xmltree.Ref{List: lab.Ref("managers"), Index: 0}
	street := xmltree.NewElement("street")
	street.AppendChild(xmltree.NewText("Oak"))

	x := ordered(doc)
	err := x.Apply(lab, []Op{
		InsertBefore{Ref: sref, Content: PCDATA{Data: "jones1"}},
		InsertAfter{Ref: name, Content: ElementContent{Element: street}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := lab.Ref("managers")
	if len(m.IDs) != 2 || m.IDs[0] != "jones1" || m.IDs[1] != "smith1" {
		t.Errorf("managers = %v, want [jones1 smith1]", m.IDs)
	}
	kids := lab.ChildElements()
	if kids[0].Name != "name" || kids[1].Name != "street" {
		t.Errorf("children = %v %v", kids[0].Name, kids[1].Name)
	}
}

// TestExample4Replace reproduces Example 4: replace lab names and manager
// references.
func TestExample4Replace(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	mgr := xmltree.Ref{List: lab.Ref("managers"), Index: 0}
	app := xmltree.NewElement("appellation")
	app.AppendChild(xmltree.NewText("Fancy Lab"))

	x := ordered(doc)
	err := x.Apply(lab, []Op{
		Replace{Child: name, Content: ElementContent{Element: app}},
		Replace{Child: mgr, Content: NewAttribute{Name: "managers", Value: "jones1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lab.FirstChildNamed("name") != nil {
		t.Error("old name still present")
	}
	got := lab.FirstChildNamed("appellation")
	if got == nil || got.TextContent() != "Fancy Lab" {
		t.Error("appellation missing")
	}
	// Replacement keeps the element's position (ordered model).
	if lab.ChildElements()[0].Name != "appellation" {
		t.Error("replacement did not preserve position")
	}
	if ids := lab.Ref("managers").IDs; len(ids) != 1 || ids[0] != "jones1" {
		t.Errorf("managers = %v", ids)
	}
}

// TestReplaceRefWrongLabelFails enforces §4.2.3: a reference binding can only
// be replaced with another reference of the same label.
func TestReplaceRefWrongLabelFails(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	mgr := xmltree.Ref{List: lab.Ref("managers"), Index: 0}
	x := ordered(doc)
	err := x.Apply(lab, []Op{
		Replace{Child: mgr, Content: NewRef{Name: "owners", ID: "jones1"}},
	})
	if err == nil || !strings.Contains(err.Error(), "label") {
		t.Errorf("expected label mismatch error, got %v", err)
	}
}

// TestExample5NestedUpdate reproduces Example 5: multi-level nested update of
// university ucla, checked against the Figure 3 output.
func TestExample5NestedUpdate(t *testing.T) {
	doc := testdocs.Bio()
	u := doc.ByID("ucla")
	firstLabName := u.ChildElements()[0].FirstChildNamed("name")
	_ = firstLabName

	newLab := xmltree.NewElement("lab")
	if _, err := newLab.SetAttr("ID", "newlab"); err != nil {
		t.Fatal(err)
	}
	nm := xmltree.NewElement("name")
	nm.AppendChild(xmltree.NewText("UCLA Secondary Lab"))
	newLab.AppendChild(nm)

	// WHERE $lab.index() = 0 binds the first lab child.
	firstLab := u.ChildElements()[0]

	x := ordered(doc)
	err := x.Apply(u, []Op{
		Insert{Content: NewAttribute{Name: "labs", Value: "2"}},
		InsertBefore{Ref: firstLab, Content: ElementContent{Element: newLab}},
		SubUpdate{
			Bind: func(target *xmltree.Element) ([]*xmltree.Element, error) {
				// FOR $l1 IN $u/lab — bound over the INPUT, before the
				// insertion of newlab.
				return target.ChildElementsNamed("lab"), nil
			},
			Ops: func(l1 *xmltree.Element) ([]Op, error) {
				labname := l1.FirstChildNamed("name")
				ci := l1.FirstChildNamed("city")
				repl := xmltree.NewElement("name")
				repl.AppendChild(xmltree.NewText("UCLA Primary Lab"))
				return []Op{
					Replace{Child: labname, Content: ElementContent{Element: repl}},
					Delete{Child: ci},
				}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Figure 3: university has labs="2", newlab first, then lalab with the
	// replaced name and no city.
	if v, _ := u.AttrValue("labs"); v != "2" {
		t.Errorf("labs attribute = %q", v)
	}
	labs := u.ChildElementsNamed("lab")
	if len(labs) != 2 {
		t.Fatalf("university has %d labs, want 2", len(labs))
	}
	if id, _ := labs[0].AttrValue("ID"); id != "newlab" {
		t.Errorf("first lab = %q, want newlab", id)
	}
	if got := labs[0].FirstChildNamed("name").TextContent(); got != "UCLA Secondary Lab" {
		t.Errorf("newlab name = %q", got)
	}
	lalab := labs[1]
	if got := lalab.FirstChildNamed("name").TextContent(); got != "UCLA Primary Lab" {
		t.Errorf("lalab name = %q", got)
	}
	if lalab.FirstChildNamed("city") != nil {
		t.Error("lalab city should be deleted")
	}
	// Sub-update was bound over the input: newlab must NOT have been
	// rewritten even though it is now a lab child of ucla.
	if got := labs[0].FirstChildNamed("name").TextContent(); got == "UCLA Primary Lab" {
		t.Error("sub-update bound over modified document, not the input")
	}
	// managers reference list of lalab untouched.
	if m := lalab.Ref("managers"); m == nil || len(m.IDs) != 2 {
		t.Error("lalab managers disturbed")
	}
}

// TestDeletedBindingUnusable enforces the §3.2 rule that a deleted binding
// cannot be used by later operations in the sequence.
func TestDeletedBindingUnusable(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	x := ordered(doc)
	err := x.Apply(lab, []Op{
		Delete{Child: name},
		Rename{Child: name, Name: "title"},
	})
	if err == nil || !strings.Contains(err.Error(), "deleted") {
		t.Errorf("expected deleted-binding error, got %v", err)
	}
}

// TestDeletedSubtreeBindingUnusable: a binding inside a deleted subtree is
// also unusable.
func TestDeletedSubtreeBindingUnusable(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	loc := lab.FirstChildNamed("location")
	city := loc.FirstChildNamed("city")

	x := ordered(doc)
	if err := x.Apply(lab, []Op{Delete{Child: loc}}); err != nil {
		t.Fatal(err)
	}
	err := x.Apply(loc, []Op{Delete{Child: city}})
	if err == nil {
		t.Error("operating inside a deleted subtree should fail")
	}
}

// TestDeletedElementUsableAsContent: the exception — deleted bindings may be
// used as content.
func TestDeletedElementUsableAsContent(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	loc := lab.FirstChildNamed("location")
	lab2 := doc.ByID("lab2")

	x := ordered(doc)
	err := x.Apply(lab, []Op{Delete{Child: loc}})
	if err != nil {
		t.Fatal(err)
	}
	// loc is detached now; inserting it as content is allowed.
	err = x.Apply(lab2, []Op{Insert{Content: ElementContent{Element: loc}}})
	if err != nil {
		t.Fatal(err)
	}
	if lab2.FirstChildNamed("location") == nil {
		t.Error("deleted element not insertable as content")
	}
}

func TestInsertDuplicateAttributeFails(t *testing.T) {
	doc := testdocs.Bio()
	jones := doc.ByID("jones1")
	x := ordered(doc)
	err := x.Apply(jones, []Op{Insert{Content: NewAttribute{Name: "age", Value: "33"}}})
	if err == nil {
		t.Error("inserting duplicate attribute should fail (§3.2)")
	}
}

func TestInsertRefIntoExistingListAppends(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	x := ordered(doc)
	err := x.Apply(lalab, []Op{Insert{Content: NewRef{Name: "managers", ID: "x9"}}})
	if err != nil {
		t.Fatal(err)
	}
	ids := lalab.Ref("managers").IDs
	if len(ids) != 3 || ids[2] != "x9" {
		t.Errorf("managers = %v", ids)
	}
}

func TestUnorderedRejectsPositional(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	x := NewExecutor(Unordered, doc)
	err := x.Apply(lab, []Op{
		InsertBefore{Ref: name, Content: PCDATA{Data: "x"}},
	})
	if err == nil {
		t.Error("unordered model must reject positional insertion")
	}
}

func TestUnorderedReplace(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	name := lab.FirstChildNamed("name")
	repl := xmltree.NewElement("name")
	repl.AppendChild(xmltree.NewText("New Name"))
	x := NewExecutor(Unordered, doc)
	err := x.Apply(lab, []Op{Replace{Child: name, Content: ElementContent{Element: repl}}})
	if err != nil {
		t.Fatal(err)
	}
	names := lab.ChildElementsNamed("name")
	if len(names) != 1 || names[0].TextContent() != "New Name" {
		t.Errorf("replace result = %v", names)
	}
}

func TestCopySemanticsOnInsert(t *testing.T) {
	doc := testdocs.Bio()
	lab2 := doc.ByID("lab2")
	base := doc.ByID("baselab")
	srcName := base.FirstChildNamed("name")

	x := ordered(doc)
	// Inserting an attached element copies it (§6.2 copy semantics).
	err := x.Apply(lab2, []Op{Insert{Content: ElementContent{Element: srcName}}})
	if err != nil {
		t.Fatal(err)
	}
	if base.FirstChildNamed("name") == nil {
		t.Error("source element was moved, not copied")
	}
	names := lab2.ChildElementsNamed("name")
	if len(names) != 2 {
		t.Fatalf("lab2 has %d name children, want 2", len(names))
	}
	// Mutating the copy does not affect the source.
	names[1].Children()[0].(*xmltree.Text).Data = "MUTATED"
	if srcName.TextContent() != "Seattle Bio Lab" {
		t.Error("copy shares storage with source")
	}
}

func TestIDRegistryMaintainedAcrossUpdates(t *testing.T) {
	doc := testdocs.Bio()
	x := ordered(doc)

	// Delete biologist jones1: its ID must be unregistered.
	jones := doc.ByID("jones1")
	if err := x.Apply(doc.Root, []Op{Delete{Child: jones}}); err != nil {
		t.Fatal(err)
	}
	if doc.ByID("jones1") != nil {
		t.Error("jones1 still registered after delete")
	}

	// Insert a new element with an ID: it must be registered.
	nb := xmltree.NewElement("biologist")
	if _, err := nb.SetAttr("ID", "doe1"); err != nil {
		t.Fatal(err)
	}
	if err := x.Apply(doc.Root, []Op{Insert{Content: ElementContent{Element: nb}}}); err != nil {
		t.Fatal(err)
	}
	if doc.ByID("doe1") == nil {
		t.Error("doe1 not registered after insert")
	}
}

func TestRenameRefEntryRenamesWholeList(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	entry := xmltree.Ref{List: lalab.Ref("managers"), Index: 1}
	x := ordered(doc)
	if err := x.Apply(lalab, []Op{Rename{Child: entry, Name: "supervisors"}}); err != nil {
		t.Fatal(err)
	}
	if lalab.Ref("managers") != nil {
		t.Error("managers still present")
	}
	if r := lalab.Ref("supervisors"); r == nil || len(r.IDs) != 2 {
		t.Error("whole-list rename did not preserve entries")
	}
}

func TestRefSnapshotSurvivesShifts(t *testing.T) {
	// Two operations target entries of the same list; the first insert
	// shifts indices, the second delete must still remove the right entry.
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	m := lalab.Ref("managers") // [smith1 jones1]
	smith := xmltree.Ref{List: m, Index: 0}
	jones := xmltree.Ref{List: m, Index: 1}

	x := ordered(doc)
	err := x.Apply(lalab, []Op{
		InsertBefore{Ref: smith, Content: PCDATA{Data: "zeroth"}},
		Delete{Child: jones}, // index 1 now holds smith1; snapshot says jones1
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := lalab.Ref("managers").IDs
	if len(ids) != 2 || ids[0] != "zeroth" || ids[1] != "smith1" {
		t.Errorf("managers = %v, want [zeroth smith1]", ids)
	}
}

func TestDeleteNonChildFails(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	other := doc.ByID("lab2").FirstChildNamed("name")
	x := ordered(doc)
	if err := x.Apply(lab, []Op{Delete{Child: other}}); err == nil {
		t.Error("deleting a non-child should fail")
	}
}

func TestDeletePCDATA(t *testing.T) {
	doc := xmltree.MustParse(`<a>hello<b/>world</a>`)
	txt := doc.Root.Children()[0].(*xmltree.Text)
	x := ordered(doc)
	if err := x.Apply(doc.Root, []Op{Delete{Child: txt}}); err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.TextContent(); got != "world" {
		t.Errorf("text after delete = %q", got)
	}
}

func TestSubUpdateOnDeletedTargetFails(t *testing.T) {
	doc := testdocs.Bio()
	lab := doc.ByID("baselab")
	loc := lab.FirstChildNamed("location")

	x := ordered(doc)
	err := x.Apply(lab, []Op{
		Delete{Child: loc},
		SubUpdate{
			Bind: func(*xmltree.Element) ([]*xmltree.Element, error) {
				return []*xmltree.Element{loc}, nil
			},
			Ops: func(s *xmltree.Element) ([]Op, error) {
				return []Op{Delete{Child: s.FirstChildNamed("city")}}, nil
			},
		},
	})
	if err == nil {
		t.Error("sub-update on deleted binding should fail")
	}
}

// Package asr implements Access Support Relations (§5.3, after Kemper &
// Moerkotte): a path index over the shredded XML tree. Each ASR tuple
// encodes one root-to-leaf path of tuple ids, left-complete — NULLs appear
// only at the bottom of the tree. The ASR accelerates long path expressions
// and supports the ASR-based delete and insert strategies of §6.
package asr

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/shred"
)

// ASR is a built access support relation over a mapping.
type ASR struct {
	M *shred.Mapping
	// Name is the SQL table name ("ASR").
	Name string
	// Depth is the number of levels (columns c0…c{Depth-1}).
	Depth int
	// LevelOf maps a table element to its level. The mapping must be
	// tree-shaped: an element reachable from two parents has no single
	// level and is rejected at build time.
	LevelOf map[string]int
}

// Attach derives the ASR structure (levels and depth) for a mapping
// without touching the database. A freshly recovered store uses it to
// re-adopt an ASR table that crash recovery already rebuilt — the struct is
// a pure function of the mapping, so recomputing it is exact.
func Attach(m *shred.Mapping) (*ASR, error) {
	a := &ASR{M: m, Name: "ASR", LevelOf: make(map[string]int)}
	// A table reachable from more than one parent table (a shared table)
	// has no single depth: reject such mappings.
	parentCount := make(map[string]int)
	for _, elem := range m.TableOrder {
		for _, c := range m.Table(elem).ChildTables {
			parentCount[c]++
		}
	}
	for elem, n := range parentCount {
		if n > 1 {
			return nil, fmt.Errorf("asr: element %q appears under %d parents; ASR requires a tree-shaped mapping", elem, n)
		}
	}
	for _, elem := range m.TableOrder {
		chain := m.ParentChain(elem)
		level := len(chain) - 1
		a.LevelOf[elem] = level
		if level+1 > a.Depth {
			a.Depth = level + 1
		}
	}
	return a, nil
}

// Build creates and populates the ASR table for the mapping's current data.
// The mark column supports the §6.1.3/§6.2.3 marking scheme.
func Build(db *relational.DB, m *shred.Mapping) (*ASR, error) {
	a, err := Attach(m)
	if err != nil {
		return nil, err
	}
	// Shared tables (same element under two parents) yield one chain, but a
	// child of a shared table would recurse; Descendants handles trees only.
	cols := make([]string, 0, a.Depth+1)
	for i := 0; i < a.Depth; i++ {
		cols = append(cols, fmt.Sprintf("c%d INTEGER", i))
	}
	cols = append(cols, "mark INTEGER")
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", a.Name, strings.Join(cols, ", "))); err != nil {
		return nil, err
	}
	for i := 0; i < a.Depth; i++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE INDEX idx_asr_c%d ON %s (c%d)", i, a.Name, i)); err != nil {
			return nil, err
		}
	}
	if err := a.populate(db); err != nil {
		return nil, err
	}
	return a, nil
}

// populate walks the stored tuples parent-to-child and inserts one path per
// leaf tuple (left-complete: interior tuples with no children also
// contribute a NULL-padded path so every tuple appears in the ASR).
func (a *ASR) populate(db *relational.DB) error {
	asrTable := db.Table(a.Name)
	// children[parentID] for each table element.
	kids := make(map[string]map[int64][]int64)
	for _, elem := range a.M.TableOrder {
		t := db.Table(a.M.Table(elem).Name)
		if t == nil {
			return fmt.Errorf("asr: table for %q missing", elem)
		}
		idIdx := t.Schema.ColumnIndex("id")
		pidIdx := t.Schema.ColumnIndex("parentId")
		byParent := make(map[int64][]int64)
		t.Scan(func(_ int, row []relational.Value) bool {
			id, _ := row[idIdx].Int()
			pid, _ := row[pidIdx].Int()
			byParent[pid] = append(byParent[pid], id)
			return true
		})
		kids[elem] = byParent
	}
	var insert func(elem string, path []relational.Value) error
	insert = func(elem string, path []relational.Value) error {
		tm := a.M.Table(elem)
		hasChild := false
		last, _ := path[len(path)-1].Int()
		for _, childElem := range tm.ChildTables {
			for _, cid := range kids[childElem][last] {
				hasChild = true
				if err := insert(childElem, append(path, relational.Int(cid))); err != nil {
					return err
				}
			}
		}
		if !hasChild {
			row := make([]relational.Value, a.Depth+1)
			copy(row, path)
			row[a.Depth] = relational.Int(0) // mark
			if _, err := asrTable.Insert(row); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rootID := range kids[a.M.Root][0] {
		if err := insert(a.M.Root, []relational.Value{relational.Int(rootID)}); err != nil {
			return err
		}
	}
	// The root with NULL parentId groups under pid 0 only if stored as
	// NULL→0; stored parentId of the root is NULL, which scans as 0 above.
	return nil
}

// Col returns the ASR column name for a level.
func (a *ASR) Col(level int) string { return fmt.Sprintf("c%d", level) }

// MarkSubtrees marks every path passing through the given tuples of elem
// (§6.1.3 step 1). It returns the generated SQL statements executed.
func (a *ASR) MarkSubtrees(db relational.Session, elem string, ids []int64) ([]string, error) {
	level, ok := a.LevelOf[elem]
	if !ok {
		return nil, fmt.Errorf("asr: element %q has no level", elem)
	}
	sql := fmt.Sprintf("UPDATE %s SET mark = 1 WHERE %s IN (%s)", a.Name, a.Col(level), idList(ids))
	if _, err := db.Exec(sql); err != nil {
		return nil, err
	}
	return []string{sql}, nil
}

// MarkedIDs returns the distinct marked tuple ids at a level (the ids of
// descendants below the delete/copy point).
func (a *ASR) MarkedIDs(db relational.Session, level int) ([]int64, error) {
	rows, err := db.Query(fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE mark = 1 AND %s IS NOT NULL",
		a.Col(level), a.Name, a.Col(level)))
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(rows.Data))
	for _, r := range rows.Data {
		out = append(out, r[0].MustInt())
	}
	return out, nil
}

// DeleteMarked removes marked paths and repairs left-completeness: ancestors
// of deleted subtrees that lost their last path are re-inserted as truncated
// NULL-padded paths (this is the §6.1.3 "update the ASR to reflect the
// current state" step, and the overhead the paper measures).
func (a *ASR) DeleteMarked(db relational.Session, elem string, ids []int64) error {
	level := a.LevelOf[elem]
	// Capture the ancestor prefixes of marked paths before deleting them.
	var prefixCols []string
	for i := 0; i < level; i++ {
		prefixCols = append(prefixCols, a.Col(i))
	}
	var prefixes *relational.Rows
	if level > 0 {
		var err error
		prefixes, err = db.Query(fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE mark = 1",
			strings.Join(prefixCols, ", "), a.Name))
		if err != nil {
			return err
		}
	}
	if _, err := db.Exec(fmt.Sprintf("DELETE FROM %s WHERE mark = 1", a.Name)); err != nil {
		return err
	}
	if prefixes == nil {
		return nil
	}
	// One prepared survivor-count probe, bound per ancestor prefix; the
	// parent-level column is indexed, so each check is a probe.
	count, err := db.Prepare(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = ?", a.Name, a.Col(level-1)))
	if err != nil {
		return err
	}
	for _, pre := range prefixes.Data {
		parentID := pre[level-1]
		if parentID.IsNull() {
			continue
		}
		rows, err := db.QueryPrepared(count, parentID)
		if err != nil {
			return err
		}
		if rows.Data[0][0].MustInt() > 0 {
			continue
		}
		vals := make([]string, a.Depth+1)
		for i := range vals {
			vals[i] = "NULL"
		}
		for i, v := range pre {
			vals[i] = relational.FormatValue(v)
		}
		vals[a.Depth] = "0"
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", a.Name, strings.Join(vals, ", "))); err != nil {
			return err
		}
	}
	return nil
}

// Unmark clears all marks (§6.2.3 insert uses mark/unmark around copying).
func (a *ASR) Unmark(db relational.Session) error {
	_, err := db.Exec(fmt.Sprintf("UPDATE %s SET mark = 0 WHERE mark = 1", a.Name))
	return err
}

// MarkedPaths returns the full marked path tuples (level columns only).
func (a *ASR) MarkedPaths(db relational.Session) (*relational.Rows, error) {
	var cols []string
	for i := 0; i < a.Depth; i++ {
		cols = append(cols, a.Col(i))
	}
	return db.Query(fmt.Sprintf("SELECT %s FROM %s WHERE mark = 1", strings.Join(cols, ", "), a.Name))
}

// InsertPaths adds new paths for an inserted subtree. Each path is a slice
// of ids from the root level down; shorter paths are NULL-padded.
func (a *ASR) InsertPaths(db relational.Session, paths [][]relational.Value) error {
	for _, p := range paths {
		vals := make([]string, a.Depth+1)
		for i := range vals {
			vals[i] = "NULL"
		}
		for i, v := range p {
			vals[i] = relational.FormatValue(v)
		}
		vals[a.Depth] = "0"
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", a.Name, strings.Join(vals, ", "))); err != nil {
			return err
		}
	}
	return nil
}

// PathQuerySQL builds the §5.3 accelerated path query: join the leaf table
// to the ASR and the ASR to the start table, skipping all intermediate
// relations. leafCond filters the leaf table (alias L); the select list
// draws from the start table (alias S).
func (a *ASR) PathQuerySQL(startElem, leafElem, selectCols, leafCond string) (string, error) {
	sl, ok := a.LevelOf[startElem]
	if !ok {
		return "", fmt.Errorf("asr: no level for %q", startElem)
	}
	ll, ok := a.LevelOf[leafElem]
	if !ok {
		return "", fmt.Errorf("asr: no level for %q", leafElem)
	}
	start := a.M.Table(startElem)
	leaf := a.M.Table(leafElem)
	sql := fmt.Sprintf("SELECT %s FROM %s L, %s A, %s S WHERE %s AND A.%s = L.id AND S.id = A.%s",
		selectCols, leaf.Name, a.Name, start.Name, leafCond, a.Col(ll), a.Col(sl))
	return sql, nil
}

func idList(ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ", ")
}

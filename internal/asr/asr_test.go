package asr

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func loadCust(t testing.TB) (*relational.DB, *shred.Mapping, *ASR) {
	t.Helper()
	dtd := xmltree.MustParseDTD(testdocs.CustDTD)
	m, err := shred.BuildMapping(dtd, "CustDB", shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, testdocs.Cust()); err != nil {
		t.Fatal(err)
	}
	a, err := Build(db, m)
	if err != nil {
		t.Fatal(err)
	}
	return db, m, a
}

func TestBuildLevels(t *testing.T) {
	_, _, a := loadCust(t)
	if a.Depth != 4 {
		t.Errorf("depth = %d, want 4", a.Depth)
	}
	for elem, want := range map[string]int{"CustDB": 0, "Customer": 1, "Order": 2, "OrderLine": 3} {
		if a.LevelOf[elem] != want {
			t.Errorf("level %s = %d, want %d", elem, a.LevelOf[elem], want)
		}
	}
}

func TestLeftCompletePaths(t *testing.T) {
	db, _, _ := loadCust(t)
	asrTab := db.Table("ASR")
	// Paths: 4 order lines (full depth) + customer 3 with no orders
	// (truncated) = 5 paths.
	if got := asrTab.RowCount(); got != 5 {
		t.Fatalf("ASR rows = %d, want 5", got)
	}
	// The truncated path has NULLs only at the bottom.
	rows, err := db.Query(`SELECT c0, c1, c2, c3 FROM ASR WHERE c2 IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("truncated paths = %d, want 1", len(rows.Data))
	}
	r := rows.Data[0]
	if r[0].IsNull() || r[1].IsNull() || !r[2].IsNull() || !r[3].IsNull() {
		t.Errorf("left-completeness violated: %v", r)
	}
}

func TestSharedMappingRejected(t *testing.T) {
	dtd := xmltree.MustParseDTD(testdocs.BioDTD)
	m, err := shred.BuildMapping(dtd, "db", shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, testdocs.Bio()); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(db, m); err == nil {
		t.Error("bio mapping shares lab across depths; ASR build should fail")
	}
}

func TestMarkAndMarkedIDs(t *testing.T) {
	db, _, a := loadCust(t)
	// Mark the Seattle John (customer id 2 — ids assigned in document
	// order: 1 CustDB, 2 Customer John, 3/6 orders…). Find it by query.
	rows, err := db.Query(`SELECT id FROM Customer WHERE Address_City_v = 'Seattle'`)
	if err != nil {
		t.Fatal(err)
	}
	johnID := rows.Data[0][0].MustInt()
	if _, err := a.MarkSubtrees(db, "Customer", []int64{johnID}); err != nil {
		t.Fatal(err)
	}
	orderIDs, err := a.MarkedIDs(db, a.LevelOf["Order"])
	if err != nil {
		t.Fatal(err)
	}
	if len(orderIDs) != 2 {
		t.Errorf("marked orders = %d, want 2", len(orderIDs))
	}
	lineIDs, err := a.MarkedIDs(db, a.LevelOf["OrderLine"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lineIDs) != 3 {
		t.Errorf("marked lines = %d, want 3", len(lineIDs))
	}
	if err := a.Unmark(db); err != nil {
		t.Fatal(err)
	}
	if ids, _ := a.MarkedIDs(db, 1); len(ids) != 0 {
		t.Errorf("marks survive Unmark: %v", ids)
	}
}

func TestDeleteMarkedRepairsLeftCompleteness(t *testing.T) {
	db, _, a := loadCust(t)
	rows, err := db.Query(`SELECT id FROM Customer WHERE Address_City_v = 'Seattle'`)
	if err != nil {
		t.Fatal(err)
	}
	johnID := rows.Data[0][0].MustInt()
	if _, err := a.MarkSubtrees(db, "Customer", []int64{johnID}); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteMarked(db, "Customer", []int64{johnID}); err != nil {
		t.Fatal(err)
	}
	// Seattle John's 3 line-paths are gone; Mary's path and Sacramento
	// John's truncated path remain; CustDB must NOT have lost its presence
	// (it still has children, so no repair row needed for it).
	asrRows := db.Table("ASR").RowCount()
	if asrRows != 2 {
		t.Errorf("ASR rows after delete = %d, want 2", asrRows)
	}
	// Now delete Mary too: her parent (CustDB) keeps Sacramento John.
	rows, _ = db.Query(`SELECT id FROM Customer WHERE Name_v = 'Mary'`)
	maryID := rows.Data[0][0].MustInt()
	if _, err := a.MarkSubtrees(db, "Customer", []int64{maryID}); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteMarked(db, "Customer", []int64{maryID}); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("ASR").RowCount(); got != 1 {
		t.Errorf("ASR rows = %d, want 1", got)
	}
	// Delete the last customer: the root becomes a leaf and must be
	// re-inserted as a truncated path (left-completeness repair).
	rows, _ = db.Query(`SELECT id FROM Customer WHERE Address_State_v = 'CA'`)
	caID := rows.Data[0][0].MustInt()
	if _, err := a.MarkSubtrees(db, "Customer", []int64{caID}); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteMarked(db, "Customer", []int64{caID}); err != nil {
		t.Fatal(err)
	}
	rows, err = db.Query(`SELECT c0, c1 FROM ASR`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].IsNull() || !rows.Data[0][1].IsNull() {
		t.Errorf("root repair row wrong: %v", rows.Data)
	}
}

func TestInsertPaths(t *testing.T) {
	db, _, a := loadCust(t)
	before := db.Table("ASR").RowCount()
	err := a.InsertPaths(db, [][]relational.Value{
		{relational.Int(1), relational.Int(900), relational.Int(901), relational.Int(902)},
		{relational.Int(1), relational.Int(900), relational.Int(903), relational.Null},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Table("ASR").RowCount(); got != before+2 {
		t.Errorf("ASR rows = %d, want %d", got, before+2)
	}
}

// TestPathQueryAcceleration checks the §5.3 two-join form returns the same
// answer as the conventional multiway join.
func TestPathQueryAcceleration(t *testing.T) {
	db, _, a := loadCust(t)
	sql, err := a.PathQuerySQL("Customer", "OrderLine", "S.Name_v", "L.ItemName_v = 'tire'")
	if err != nil {
		t.Fatal(err)
	}
	asrRows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	conventional, err := db.Query(`
SELECT C.Name_v FROM Customer C, Order_t O, OrderLine OL
WHERE OL.ItemName_v = 'tire' AND OL.parentId = O.id AND O.parentId = C.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(asrRows.Data) != len(conventional.Data) {
		t.Fatalf("ASR path query returned %d rows, conventional %d", len(asrRows.Data), len(conventional.Data))
	}
	for i := range asrRows.Data {
		if asrRows.Data[i][0] != relational.Text("John") {
			t.Errorf("row %d = %v", i, asrRows.Data[i])
		}
	}
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func stmt(sql string, args ...any) Stmt {
	s := Stmt{SQL: sql}
	for _, a := range args {
		switch x := a.(type) {
		case nil:
			s.Args = append(s.Args, Value{})
		case int64:
			s.Args = append(s.Args, Value{Kind: KindInt, Int: x})
		case string:
			s.Args = append(s.Args, Value{Kind: KindText, Str: x})
		default:
			panic("stmt: unsupported test arg type")
		}
	}
	return s
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func replayAll(t *testing.T, l *Log) [][]Stmt {
	t.Helper()
	var out [][]Stmt
	if err := l.Replay(func(stamp uint64, stmts []Stmt) error {
		cp := append([]Stmt(nil), stmts...)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncOff})
	records := [][]Stmt{
		{stmt("INSERT INTO t VALUES (?, ?)", int64(1), "a")},
		{stmt("UPDATE t SET v = ? WHERE id = ?", "x''y", int64(1)), stmt("DELETE FROM t WHERE id = ?", int64(9))},
		{stmt("CREATE TABLE u (id INTEGER)")},
		{stmt("INSERT INTO u VALUES (?)", nil)},
	}
	for i, rec := range records {
		lsn, err := l.Append(rec, uint64(i+100))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn = %d", i, lsn)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	defer l2.Close()
	got := replayAll(t, l2)
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("replay mismatch:\n got %#v\nwant %#v", got, records)
	}
	if l2.RecoveredCommits != len(records) {
		t.Fatalf("RecoveredCommits = %d, want %d", l2.RecoveredCommits, len(records))
	}
	// Commit stamps survive the round trip in record order.
	var stamps []uint64
	if err := l2.Replay(func(stamp uint64, _ []Stmt) error {
		stamps = append(stamps, stamp)
		return nil
	}); err != nil {
		t.Fatalf("Replay (stamps): %v", err)
	}
	for i, s := range stamps {
		if s != uint64(i+100) {
			t.Fatalf("stamp %d = %d, want %d", i, s, i+100)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncOff, SegmentSize: 128})
	var want [][]Stmt
	for i := 0; i < 40; i++ {
		rec := []Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d, 'some padding text')", i))}
		want = append(want, rec)
		if _, err := l.Append(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	defer l2.Close()
	if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated replay mismatch: %d records vs %d", len(got), len(want))
	}
}

// TestTornTailTruncation crashes the log at every possible byte offset and
// checks recovery yields exactly the records whose frames fully survived.
func TestTornTailTruncation(t *testing.T) {
	// Build a reference log once to learn the full size.
	build := func(dir string) [][]Stmt {
		l := mustOpen(t, dir, Options{Sync: SyncOff})
		var recs [][]Stmt
		for i := 0; i < 10; i++ {
			rec := []Stmt{stmt("INSERT INTO t VALUES (?, ?)", int64(i), fmt.Sprintf("val-%d", i))}
			recs = append(recs, rec)
			if _, err := l.Append(rec, 0); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return recs
	}
	refDir := t.TempDir()
	want := build(refDir)
	segs, _ := filepath.Glob(filepath.Join(refDir, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, to compute the expected surviving prefix.
	var bounds []int // bounds[i] = end offset of record i
	rest := data
	for len(rest) > 0 {
		_, next, ok := readFrame(rest)
		if !ok {
			t.Fatal("reference log has a bad frame")
		}
		bounds = append(bounds, len(data)-len(next))
		rest = next
	}

	for cut := 0; cut <= len(data); cut += 7 {
		dir := t.TempDir()
		_ = build(dir)
		seg, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
		if err := os.Truncate(seg[0], int64(cut)); err != nil {
			t.Fatal(err)
		}
		l := mustOpen(t, dir, Options{Sync: SyncOff})
		got := replayAll(t, l)
		l.Close()
		survive := 0
		for _, b := range bounds {
			if b <= cut {
				survive++
			}
		}
		if len(got) != survive {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), survive)
		}
		if survive > 0 && !reflect.DeepEqual(got, want[:survive]) {
			t.Fatalf("cut at %d: recovered wrong prefix", cut)
		}
	}
}

// TestCorruptMidLogStopsReplay flips a byte inside an early record: recovery
// must truncate there and drop later segments entirely.
func TestCorruptMidLogStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncOff, SegmentSize: 96})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))}, 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Corrupt a payload byte in the first segment.
	first := segs[0]
	data, _ := os.ReadFile(first)
	data[frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	got := replayAll(t, l2)
	l2.Close()
	if len(got) != 0 {
		t.Fatalf("corruption in first record: recovered %d records, want 0", len(got))
	}
	left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(left) != 1 {
		t.Fatalf("later segments should be deleted, %d remain", len(left))
	}
}

func TestCheckpointTruncatesAndSkips(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncOff, SegmentSize: 96})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(l.LastLSN(), []byte("state-at-10")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	var tail [][]Stmt
	for i := 10; i < 14; i++ {
		rec := []Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))}
		tail = append(tail, rec)
		if _, err := l.Append(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	defer l2.Close()
	payload, lsn, ok, err := l2.ReadCheckpoint()
	if err != nil || !ok {
		t.Fatalf("ReadCheckpoint: ok=%v err=%v", ok, err)
	}
	if string(payload) != "state-at-10" || lsn != 10 {
		t.Fatalf("checkpoint = %q @ %d", payload, lsn)
	}
	if got := replayAll(t, l2); !reflect.DeepEqual(got, tail) {
		t.Fatalf("replay after checkpoint: got %d records, want %d", len(got), len(tail))
	}
	// Old segments fully below the checkpoint are gone.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	for _, s := range segs {
		first, _ := parseSeq(filepath.Base(s), segPrefix, segSuffix)
		if first <= 5 {
			t.Fatalf("segment %s should have been truncated away", s)
		}
	}
}

// TestCorruptCheckpointFallsBackToLog: an unreadable checkpoint is ignored
// and the full log replays.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncOff})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))}, 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Plant a corrupt checkpoint file claiming to cover everything.
	if err := os.WriteFile(filepath.Join(dir, ckptName(5)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	defer l2.Close()
	if _, _, ok, _ := l2.ReadCheckpoint(); ok {
		t.Fatal("corrupt checkpoint should not validate")
	}
	if got := replayAll(t, l2); len(got) != 5 {
		t.Fatalf("want full 5-record replay, got %d", len(got))
	}
}

// TestGroupCommitCoalesces: concurrent committers in group mode all become
// durable, and the log survives a reopen.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	// Small segments force rotations mid-stream, so the deferred
	// pending-segment fsync path runs under concurrency.
	l := mustOpen(t, dir, Options{Sync: SyncGroup, GroupWindow: 500 * time.Microsecond, SegmentSize: 256})
	const committers, per = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append([]Stmt{stmt(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", c, i))}, 0)
				if err != nil {
					errs <- err
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{Sync: SyncOff})
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != committers*per {
		t.Fatalf("recovered %d records, want %d", len(got), committers*per)
	}
}

package wal

import (
	"reflect"
	"testing"
)

// FuzzDecodeCommit drives random byte corruption through the record
// decoder: any input must either decode cleanly or return an error — never
// panic, never over-allocate from an attacker-controlled length field. A
// valid record that decodes is additionally required to re-encode to a
// decodable equivalent (round-trip stability).
func FuzzDecodeCommit(f *testing.F) {
	seedRecords := [][]Stmt{
		{},
		{{SQL: "INSERT INTO t VALUES (?, ?)", Args: []Value{{Kind: KindInt, Int: 1}, {Kind: KindText, Str: "x"}}}},
		{{SQL: "CREATE TABLE t (id INTEGER)"}, {SQL: "DELETE FROM t", Args: []Value{{}}}},
		{{SQL: "UPDATE t SET v = ?", Args: []Value{{Kind: KindText, Str: "quote''d"}, {Kind: KindInt, Int: -5}, {}}}},
	}
	for _, rec := range seedRecords {
		payload, err := encodeCommit(7, 42, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		// Also seed the framed form so the frame reader gets coverage.
		f.Add(frame(payload))
		// And a legacy kind-1 (pre-stamp) payload: v2 framing minus the
		// stamp, with the kind byte rewritten. Recovery of old logs goes
		// through the same decoder.
		v1 := append([]byte(nil), payload[:9]...)
		v1[8] = recCommit
		v1 = append(v1, payload[17:]...)
		f.Add(v1)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader must reject or accept without panicking.
		if payload, rest, ok := readFrame(data); ok {
			_ = rest
			_, _, _, _ = DecodeCommit(payload)
		}
		lsn, stamp, stmts, err := DecodeCommit(data)
		if err != nil {
			return
		}
		// Valid decode: re-encoding must round-trip. Legacy kind-1 input
		// re-encodes as v2 with stamp 0, which decodes back identically.
		re, err := encodeCommit(lsn, stamp, stmts)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		lsn2, stamp2, stmts2, err := DecodeCommit(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if lsn2 != lsn || stamp2 != stamp || !reflect.DeepEqual(stmts2, stmts) {
			t.Fatalf("round-trip mismatch")
		}
	})
}

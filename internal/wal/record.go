// Package wal implements the durability substrate: a segmented, CRC-checked
// redo log of committed statements, plus checkpoint files and crash
// recovery. The log is logical — each commit record carries the SQL text
// (or prepared shape) and bound arguments of the statements the transaction
// committed — so replay re-executes statements through the normal engine
// rather than patching pages. The relational layer (internal/relational)
// owns what goes into a record; this package owns framing, fsync policy,
// segment rotation, checkpoint retention, and torn-tail truncation.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind tags a logged Value. The set is closed: NULL, int64, string — the
// relational value domain. Encoding any other kind is an error at the
// append boundary, never a lossy fallback rendering.
type Kind uint8

// Value kinds; the wire tags below reuse these numbers.
const (
	KindNull Kind = iota
	KindInt
	KindText
)

// Value is one logged argument in unboxed tagged form. It mirrors the
// relational layer's value struct field-for-field so conversion between the
// two is a copy, not an allocation.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
}

// Stmt is one logged statement: SQL text plus the bound argument values.
type Stmt struct {
	SQL  string
	Args []Value
}

// Frame layout: [u32 length][u32 crc32c(payload)][payload]. The length
// covers the payload only. Commit payload layout:
//
//	u64  lsn
//	u8   kind (recCommit or recCommitV2)
//	u64  commit stamp           (recCommitV2 only)
//	uv   statement count
//	per statement: uv len, sql bytes, uv nargs, per arg: tagged value
//
// Tagged values: 0x00 = NULL, 0x01 = int64 (zigzag varint), 0x02 = string
// (uvarint length + bytes). recCommitV2 adds the MVCC commit stamp so
// recovery can restore the stamp counter past every replayed transaction;
// kind-1 records (pre-stamp logs) decode with stamp 0 and remain replayable.
const (
	frameHeaderSize = 8
	recCommit       = byte(1)
	recCommitV2     = byte(2)
	// maxFrameSize bounds a frame length read from disk: anything larger is
	// treated as corruption, not an allocation request.
	maxFrameSize = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendValue appends the tagged encoding of v. A kind outside the closed
// NULL/int/string set is rejected with an error: the log must never hold a
// value recovery cannot decode. Exported so the relational snapshot codec
// shares one value encoding with the log.
func AppendValue(b []byte, v Value) ([]byte, error) {
	switch v.Kind {
	case KindNull:
		return append(b, byte(KindNull)), nil
	case KindInt:
		b = append(b, byte(KindInt))
		return binary.AppendVarint(b, v.Int), nil
	case KindText:
		b = append(b, byte(KindText))
		b = binary.AppendUvarint(b, uint64(len(v.Str)))
		return append(b, v.Str...), nil
	default:
		return nil, fmt.Errorf("wal: unencodable value kind %d", uint8(v.Kind))
	}
}

// ReadValue decodes one tagged value, returning the remaining bytes. It
// never panics on corrupt input — every length is validated against the
// buffer before use (the fuzz target pins this).
func ReadValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("wal: truncated value")
	}
	tag, b := b[0], b[1:]
	switch Kind(tag) {
	case KindNull:
		return Value{}, b, nil
	case KindInt:
		v, n := binary.Varint(b)
		if n <= 0 {
			return Value{}, nil, fmt.Errorf("wal: bad varint")
		}
		return Value{Kind: KindInt, Int: v}, b[n:], nil
	case KindText:
		ln, n := binary.Uvarint(b)
		if n <= 0 || ln > uint64(len(b)-n) {
			return Value{}, nil, fmt.Errorf("wal: bad string length")
		}
		return Value{Kind: KindText, Str: string(b[n : n+int(ln)])}, b[n+int(ln):], nil
	default:
		return Value{}, nil, fmt.Errorf("wal: unknown value tag %d", tag)
	}
}

// encodeCommit renders a commit record payload. New records are always v2:
// the commit stamp rides in every frame even when zero, so the format has
// one write path.
func encodeCommit(lsn, stamp uint64, stmts []Stmt) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, lsn)
	b = append(b, recCommitV2)
	b = binary.BigEndian.AppendUint64(b, stamp)
	b = binary.AppendUvarint(b, uint64(len(stmts)))
	var err error
	for _, s := range stmts {
		b = binary.AppendUvarint(b, uint64(len(s.SQL)))
		b = append(b, s.SQL...)
		b = binary.AppendUvarint(b, uint64(len(s.Args)))
		for _, a := range s.Args {
			if b, err = AppendValue(b, a); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeCommit parses a commit record payload. Corrupt input of any shape
// returns an error; it must never panic (FuzzDecodeCommit drives random
// corruption through it).
func DecodeCommit(payload []byte) (lsn, stamp uint64, stmts []Stmt, err error) {
	if len(payload) < 9 {
		return 0, 0, nil, fmt.Errorf("wal: short record payload")
	}
	lsn = binary.BigEndian.Uint64(payload)
	var b []byte
	switch payload[8] {
	case recCommit:
		// Pre-stamp record: no MVCC commit stamp on the wire, decode as 0.
		b = payload[9:]
	case recCommitV2:
		if len(payload) < 17 {
			return 0, 0, nil, fmt.Errorf("wal: short v2 record payload")
		}
		stamp = binary.BigEndian.Uint64(payload[9:])
		b = payload[17:]
	default:
		return 0, 0, nil, fmt.Errorf("wal: unknown record kind %d", payload[8])
	}
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return 0, 0, nil, fmt.Errorf("wal: bad statement count")
	}
	b = b[n:]
	stmts = make([]Stmt, 0, count)
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(b)
		if n <= 0 || ln > uint64(len(b)-n) {
			return 0, 0, nil, fmt.Errorf("wal: bad statement length")
		}
		s := Stmt{SQL: string(b[n : n+int(ln)])}
		b = b[n+int(ln):]
		nargs, n := binary.Uvarint(b)
		if n <= 0 || nargs > uint64(len(b)) {
			return 0, 0, nil, fmt.Errorf("wal: bad argument count")
		}
		b = b[n:]
		for j := uint64(0); j < nargs; j++ {
			var v Value
			if v, b, err = ReadValue(b); err != nil {
				return 0, 0, nil, err
			}
			s.Args = append(s.Args, v)
		}
		stmts = append(stmts, s)
	}
	if len(b) != 0 {
		return 0, 0, nil, fmt.Errorf("wal: %d trailing bytes in record", len(b))
	}
	return lsn, stamp, stmts, nil
}

// frame wraps a payload with the length + CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:], crc32.Checksum(payload, crcTable))
	copy(out[frameHeaderSize:], payload)
	return out
}

// readFrame extracts the first frame from b, returning the payload and the
// remainder. ok=false means b starts with a torn or corrupt frame (short
// header, impossible length, or CRC mismatch) — the caller truncates there.
func readFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < frameHeaderSize {
		return nil, nil, false
	}
	ln := binary.BigEndian.Uint32(b)
	if ln > maxFrameSize || uint64(ln) > uint64(len(b)-frameHeaderSize) {
		return nil, nil, false
	}
	payload = b[frameHeaderSize : frameHeaderSize+ln]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(b[4:]) {
		return nil, nil, false
	}
	return payload, b[frameHeaderSize+ln:], true
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SyncMode selects the fsync policy governing when a commit is considered
// durable.
type SyncMode int

const (
	// SyncGroup batches fsyncs: committers block until a background flusher
	// syncs the log, so concurrent commits inside one batching window share
	// a single fsync. This is the default — group commit is what keeps the
	// logged write path off the concurrent read path.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs before every commit returns. Concurrent committers
	// still coalesce (a committer whose record was covered by another's
	// fsync does not sync again), but an isolated commit pays a full fsync.
	SyncAlways
	// SyncOff never fsyncs on commit. Records are still written to the OS
	// immediately, so a process crash loses nothing — only a machine crash
	// can lose the un-synced tail.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses "always", "group", or "off".
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	default:
		return SyncGroup, fmt.Errorf("wal: unknown sync mode %q (want always, group, or off)", s)
	}
}

// Options configures a Log.
type Options struct {
	Sync SyncMode
	// GroupWindow is the batching window for SyncGroup: the background
	// flusher syncs at most once per window, and every commit inside the
	// window rides the same fsync. Default 2ms.
	GroupWindow time.Duration
	// SegmentSize is the rotation threshold. A record that would push the
	// active segment past it starts a new segment. Default 4 MiB.
	SegmentSize int64
	// Observation points, all optional (nil disables each): AppendHist
	// records per-Append wall time in nanoseconds, FsyncHist the duration
	// of each durability flush, and BatchHist the number of commit records
	// each flush made durable (the group-commit batch size).
	AppendHist *metrics.Histogram
	FsyncHist  *metrics.Histogram
	BatchHist  *metrics.Histogram
}

func (o Options) window() time.Duration {
	if o.GroupWindow <= 0 {
		return 2 * time.Millisecond
	}
	return o.GroupWindow
}

func (o Options) segmentSize() int64 {
	if o.SegmentSize <= 0 {
		return 4 << 20
	}
	return o.SegmentSize
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

func segName(firstLSN uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix) }
func ckptName(lsn uint64) string     { return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segment is one on-disk log file. Records it holds have LSNs in
// [first, next.first-1] (the last segment runs to the log's current LSN).
type segment struct {
	first uint64
	path  string
}

// Log is a segmented redo log rooted at a directory.
//
// Locking: mu guards the append path (active file, sizes, LSN counter) and
// segment bookkeeping. syncMu guards durability state (durable LSN, sticky
// sync error) and the condition variable group-commit waiters sleep on.
// fsync itself runs under syncMu but never under mu, so appenders — who run
// inside the database's commit critical section — never wait behind a disk
// flush.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	active     *os.File
	activeSize int64
	segs       []segment // ascending by first LSN; last one is active
	lsn        uint64    // last assigned LSN
	// appendErr is sticky: a partial frame write that could not be rewound
	// leaves torn bytes mid-segment, and recovery would silently discard
	// anything appended after them — so the log fail-stops instead.
	appendErr error
	// pending holds rotated-out segment files not yet fsynced: rotation
	// happens inside Append — inside the database's commit critical
	// section — so its fsync is deferred to the durability path (syncTo),
	// which runs outside that lock. dirDirty likewise defers the directory
	// fsync a new segment file needs. Recovery tolerates the resulting
	// window (a torn earlier segment truncates everything after it), and
	// no commit is acknowledged durable until the pending files are synced
	// in order.
	pending  []*os.File
	dirDirty bool

	ckptLSN   uint64 // latest durable checkpoint's LSN
	hasCkpt   bool   // distinguishes "checkpoint at LSN 0" from "none"
	sinceCkpt int64  // bytes appended since the latest checkpoint
	closed    bool

	syncMu   sync.Mutex
	syncCond *sync.Cond
	durable  uint64 // highest LSN known to be on stable storage
	syncErr  error  // sticky: a failed fsync poisons the log
	// dirSyncOff remembers a filesystem that rejects directory fsync
	// (EINVAL/ENOTSUP); durability degrades to best effort there instead
	// of poisoning the log. Guarded by syncMu.
	dirSyncOff bool

	stopGroup chan struct{}
	groupWG   sync.WaitGroup

	ckptMu sync.Mutex // serializes Checkpoint calls

	// RecoveredCommits counts the commit records the last Open found intact
	// past the checkpoint — the replayable tail length. Crash tests use it
	// to locate the surviving prefix.
	RecoveredCommits int
}

// Open opens (or creates) the log directory, truncates any torn tail, and
// prepares the last segment for appending. Replay must be called before the
// first Append.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.syncCond = sync.NewCond(&l.syncMu)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ckpts []uint64
	for _, e := range entries {
		if first, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			l.segs = append(l.segs, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
		if lsn, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, lsn)
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })

	// Latest checkpoint whose payload validates wins; invalid or torn
	// checkpoint files (a crash mid-checkpoint) are ignored and removed.
	for i := len(ckpts) - 1; i >= 0; i-- {
		if _, err := readCheckpointFile(filepath.Join(dir, ckptName(ckpts[i]))); err == nil {
			l.ckptLSN = ckpts[i]
			l.hasCkpt = true
			break
		}
		os.Remove(filepath.Join(dir, ckptName(ckpts[i])))
		ckpts = ckpts[:i]
	}

	if err := l.validateSegments(); err != nil {
		return nil, err
	}
	if l.lsn < l.ckptLSN {
		// Checkpointing truncates the segments it covers, so a freshly
		// checkpointed log has no records below its checkpoint.
		l.lsn = l.ckptLSN
	}

	if len(l.segs) == 0 {
		if err := l.addSegment(); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, err
		}
		l.active = f
		l.activeSize = st.Size()
	}

	if opts.Sync == SyncGroup {
		l.stopGroup = make(chan struct{})
		l.groupWG.Add(1)
		go l.groupLoop()
	}
	return l, nil
}

// validateSegments walks every record in LSN order, truncating the log at
// the first torn or corrupt frame. A bad frame in a non-final segment also
// deletes all later segments: the log is a consistent prefix or nothing.
func (l *Log) validateSegments() error {
	for i, seg := range l.segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off := 0
		rest := data
		for len(rest) > 0 {
			payload, next, ok := readFrame(rest)
			if !ok {
				if err := os.Truncate(seg.path, int64(off)); err != nil {
					return err
				}
				for _, later := range l.segs[i+1:] {
					if err := os.Remove(later.path); err != nil {
						return err
					}
				}
				l.segs = l.segs[:i+1]
				return nil
			}
			lsn, _, _, derr := DecodeCommit(payload)
			if derr != nil {
				// Framed correctly but undecodable: same treatment.
				if err := os.Truncate(seg.path, int64(off)); err != nil {
					return err
				}
				for _, later := range l.segs[i+1:] {
					if err := os.Remove(later.path); err != nil {
						return err
					}
				}
				l.segs = l.segs[:i+1]
				return nil
			}
			if lsn > l.lsn {
				l.lsn = lsn
			}
			off = len(data) - len(next)
			rest = next
		}
	}
	return nil
}

// addSegment opens a fresh segment whose first record will be lsn+1. The
// directory fsync the new entry needs (so a commit fsynced into the
// segment cannot vanish with its directory entry on a machine crash) is
// deferred to the durability path via dirDirty — addSegment runs under mu,
// inside the commit critical section. Caller holds mu (or is
// initializing).
func (l *Log) addSegment() error {
	path := filepath.Join(l.dir, segName(l.lsn+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.dirDirty = true
	l.segs = append(l.segs, segment{first: l.lsn + 1, path: path})
	l.active = f
	l.activeSize = 0
	return nil
}

// Append writes one commit record and returns its LSN. stamp is the MVCC
// commit stamp the transaction committed under (0 when the engine has no
// versioned state); it rides in the record so recovery restores the stamp
// counter. The write reaches the OS before Append returns (a process crash
// cannot lose it); stable storage is governed by WaitDurable and the sync
// policy. Callers serialize Append with their own commit ordering (the
// database's writer lock), so record order always matches commit order.
func (l *Log) Append(stmts []Stmt, stamp uint64) (uint64, error) {
	if h := l.opts.AppendHist; h != nil {
		defer h.ObserveSince(time.Now())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.appendErr != nil {
		return 0, l.appendErr
	}
	payload, err := encodeCommit(l.lsn+1, stamp, stmts)
	if err != nil {
		return 0, err
	}
	if len(payload) > maxFrameSize {
		// readFrame treats anything larger as corruption at recovery, so
		// writing it would silently destroy the log tail on the next open.
		// Callers with bulk payloads split them (relational.LogBulk chunks).
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxFrameSize)
	}
	fr := frame(payload)
	if l.activeSize > 0 && l.activeSize+int64(len(fr)) > l.opts.segmentSize() {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(fr); err != nil {
		// The file may now hold a torn frame; a later append would land
		// after the garbage and be silently discarded at recovery. Rewind
		// to the last good boundary; if even that fails, fail-stop.
		if terr := l.active.Truncate(l.activeSize); terr == nil {
			if _, serr := l.active.Seek(l.activeSize, 0); serr == nil {
				return 0, err
			}
		}
		l.appendErr = fmt.Errorf("wal: log poisoned by unrewindable partial write: %w", err)
		return 0, l.appendErr
	}
	l.lsn++
	l.activeSize += int64(len(fr))
	l.sinceCkpt += int64(len(fr))
	return l.lsn, nil
}

// rotateLocked retires the active segment onto the pending-sync list and
// opens the next one. No disk flush happens here — rotation runs inside
// the commit critical section; syncTo fsyncs (and closes) pending
// segments, oldest first, before acknowledging any later record durable.
func (l *Log) rotateLocked() error {
	l.pending = append(l.pending, l.active)
	return l.addSegment()
}

// WaitDurable blocks until the record at lsn is on stable storage under the
// configured policy. It never holds the append lock across an fsync, so
// appenders (and therefore the database's readers, who only wait for
// appenders) are never blocked behind the disk.
func (l *Log) WaitDurable(lsn uint64) error {
	switch l.opts.Sync {
	case SyncOff:
		return nil
	case SyncAlways:
		return l.syncTo(lsn)
	default: // SyncGroup
		l.syncMu.Lock()
		defer l.syncMu.Unlock()
		for l.durable < lsn && l.syncErr == nil {
			if l.isClosed() {
				return fmt.Errorf("wal: log closed while awaiting durability")
			}
			l.syncCond.Wait()
		}
		return l.syncErr
	}
}

func (l *Log) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// syncTo fsyncs until at least lsn is durable: the directory (if a new
// segment entry is outstanding), then rotated-out pending segments oldest
// first, then the active segment. Concurrent callers coalesce — whoever
// holds syncMu syncs the latest appended LSN, and everyone whose record
// that covered returns without touching the disk. Only files synced here
// (or in Close) are ever closed, so the snapshots taken under mu stay
// valid across the flushes.
func (l *Log) syncTo(lsn uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.durable >= lsn {
		return nil
	}
	// Snapshot under mu, flush outside it. Records appended after the
	// snapshot may also become durable — harmless, durable only advances
	// to the snapshot.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log is closed")
	}
	pending := l.pending
	l.pending = nil
	f, cur, dirty := l.active, l.lsn, l.dirDirty
	l.dirDirty = false
	l.mu.Unlock()
	flushStart := time.Now()
	poison := func(err error, unsynced []*os.File) error {
		for _, pf := range unsynced {
			pf.Close() // off l.pending already; close here or leak
		}
		l.syncErr = err
		l.syncCond.Broadcast()
		return err
	}
	if dirty && !l.dirSyncOff {
		if err := syncDir(l.dir); err != nil {
			// Filesystems that cannot fsync directories (EINVAL/ENOTSUP)
			// get best-effort semantics; a real I/O error on the path that
			// acknowledges durability must fail-stop like a file fsync.
			if dirSyncUnsupported(err) {
				l.dirSyncOff = true
			} else {
				return poison(err, pending)
			}
		}
	}
	for i, pf := range pending {
		if err := pf.Sync(); err != nil {
			return poison(err, pending[i:])
		}
		pf.Close()
	}
	if err := f.Sync(); err != nil {
		// Close may have closed the active file concurrently; its own Sync
		// already covered these records then. Anything else is a real
		// durability failure.
		l.mu.Lock()
		wasClosed := l.closed
		l.mu.Unlock()
		if !wasClosed {
			return poison(err, nil)
		}
	}
	l.opts.FsyncHist.ObserveSince(flushStart)
	if cur > l.durable {
		// The records this flush newly acknowledged form one group-commit
		// batch.
		l.opts.BatchHist.Observe(int64(cur - l.durable))
		l.durable = cur
	}
	l.syncCond.Broadcast()
	return nil
}

// groupLoop is the SyncGroup flusher: once per window it makes everything
// appended so far durable and wakes the committers waiting on it.
func (l *Log) groupLoop() {
	defer l.groupWG.Done()
	for {
		select {
		case <-l.stopGroup:
			return
		case <-time.After(l.opts.window()):
		}
		l.mu.Lock()
		cur, closed := l.lsn, l.closed
		l.mu.Unlock()
		if closed {
			return
		}
		l.syncMu.Lock()
		dirty := l.durable < cur && l.syncErr == nil
		l.syncMu.Unlock()
		if dirty {
			l.syncTo(cur)
		}
	}
}

// LastLSN returns the most recently assigned LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// SizeSinceCheckpoint returns bytes appended since the latest checkpoint —
// the auto-checkpoint trigger input.
func (l *Log) SizeSinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// CheckpointLSN returns the LSN covered by the latest checkpoint.
func (l *Log) CheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// Replay streams every intact commit record past the checkpoint, in LSN
// order, to fn along with its commit stamp (0 for pre-stamp records). Call
// it once, after Open and before the first Append.
func (l *Log) Replay(fn func(stamp uint64, stmts []Stmt) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	ckpt := uint64(0)
	if l.hasCkpt {
		ckpt = l.ckptLSN
	}
	l.mu.Unlock()
	n := 0
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		rest := data
		for len(rest) > 0 {
			payload, next, ok := readFrame(rest)
			if !ok {
				// validateSegments already truncated; anything left is a
				// race with an external writer, which is unsupported.
				return fmt.Errorf("wal: unexpected corrupt frame during replay in %s", seg.path)
			}
			lsn, stamp, stmts, err := DecodeCommit(payload)
			if err != nil {
				return err
			}
			if lsn > ckpt {
				if err := fn(stamp, stmts); err != nil {
					return fmt.Errorf("wal: replaying record %d: %w", lsn, err)
				}
				n++
			}
			rest = next
		}
	}
	l.RecoveredCommits = n
	return nil
}

// Sync forces everything appended so far onto stable storage, regardless of
// policy.
func (l *Log) Sync() error {
	return l.syncTo(l.LastLSN())
}

// Close makes the log durable and releases its files. Further appends fail.
func (l *Log) Close() error {
	if l.stopGroup != nil {
		close(l.stopGroup)
		l.groupWG.Wait()
		l.stopGroup = nil
	}
	err := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	// Sync drained the pending list on success; on failure, sweep whatever
	// is left so no file handles leak.
	for _, pf := range l.pending {
		pf.Close()
	}
	l.pending = nil
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	// Wake any group-commit waiters so they observe the closed state.
	l.syncCond.Broadcast()
	return err
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Checkpoint files. A checkpoint is an opaque payload (the relational layer
// serializes schema history + a data snapshot into it) covering every
// record with LSN ≤ its stamp. The file itself is CRC-framed like a log
// record and written via rename, so a crash mid-checkpoint leaves either
// the previous checkpoint or a file Open detects as invalid and discards —
// never a half-trusted one.

// WriteCheckpoint durably writes a checkpoint covering all records with
// LSN ≤ lsn, then prunes: segments whose records are all covered are
// deleted, as are older checkpoint files. The caller guarantees the payload
// reflects at least the state at lsn (it captures both under the database
// lock, excluding concurrent commits).
func (l *Log) WriteCheckpoint(lsn uint64, payload []byte) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	l.mu.Lock()
	behind := l.hasCkpt && lsn < l.ckptLSN
	l.mu.Unlock()
	if behind {
		return fmt.Errorf("wal: checkpoint LSN %d behind existing %d", lsn, l.CheckpointLSN())
	}

	// The log tail must be durable before record deletion below it can be
	// considered; syncing first also means recovery never needs a record
	// the checkpoint superseded.
	if err := l.Sync(); err != nil {
		return err
	}

	tmp := filepath.Join(l.dir, "ckpt.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame(payload)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(l.dir, ckptName(lsn))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(l.dir)

	// Rotate so the active segment holds only post-checkpoint records, then
	// prune fully covered segments and superseded checkpoints.
	l.mu.Lock()
	prevCkpt, prevHad := l.ckptLSN, l.hasCkpt
	l.ckptLSN = lsn
	l.hasCkpt = true
	l.sinceCkpt = 0
	if l.activeSize > 0 {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	var keep []segment
	var rmErr error
	for i, seg := range l.segs {
		covered := false
		if i+1 < len(l.segs) {
			// Segment i holds LSNs [seg.first, next.first-1].
			covered = l.segs[i+1].first-1 <= lsn
		}
		if !covered {
			keep = append(keep, seg)
			continue
		}
		// A removal failure keeps the segment listed for the next attempt;
		// already-gone files (a retry after such a failure) are success.
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			rmErr = err
			keep = append(keep, seg)
		}
	}
	l.segs = keep
	l.mu.Unlock()
	if rmErr != nil {
		return fmt.Errorf("wal: pruning checkpointed segments: %w", rmErr)
	}

	if prevHad && prevCkpt != lsn {
		os.Remove(filepath.Join(l.dir, ckptName(prevCkpt)))
	}
	syncDir(l.dir)
	return nil
}

// ReadCheckpoint returns the latest valid checkpoint payload, or ok=false
// when the log has none.
func (l *Log) ReadCheckpoint() (payload []byte, lsn uint64, ok bool, err error) {
	l.mu.Lock()
	lsn, ok = l.ckptLSN, l.hasCkpt
	l.mu.Unlock()
	if !ok {
		return nil, 0, false, nil
	}
	payload, err = readCheckpointFile(filepath.Join(l.dir, ckptName(lsn)))
	if err != nil {
		return nil, 0, false, err
	}
	return payload, lsn, true, nil
}

// readCheckpointFile reads and CRC-validates one checkpoint file.
func readCheckpointFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, rest, ok := readFrame(data)
	if !ok || len(rest) != 0 {
		return nil, fmt.Errorf("wal: corrupt checkpoint file %s", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so file creations, renames, and removals are
// durable. The durability-acknowledgment path (wal.syncTo) treats its
// error as a sync failure; the checkpoint path uses it best-effort (a lost
// checkpoint rename just means recovering from the previous one).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// dirSyncUnsupported reports an error meaning the filesystem cannot fsync
// directories at all (as opposed to an I/O failure).
func dirSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY)
}

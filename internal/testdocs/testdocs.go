// Package testdocs provides the paper's running example documents as shared
// fixtures: the bio-lab document of Figure 1 and the customer database of
// Figure 4. It is used by tests, examples, and benchmarks across packages.
package testdocs

import "repro/internal/xmltree"

// BioDTD declares the Figure 1 document, classifying its ID/IDREF/IDREFS
// attributes.
const BioDTD = `
<!ELEMENT db (university | lab | paper | biologist)*>
<!ELEMENT university (lab*)>
<!ELEMENT lab (name, street?, city?, location?, country?)>
<!ELEMENT location (city, country)>
<!ELEMENT paper (title)>
<!ELEMENT biologist (lastname, firstname?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT firstname (#PCDATA)>
<!ATTLIST db lab IDREF #IMPLIED>
<!ATTLIST university ID ID #REQUIRED labs CDATA #IMPLIED>
<!ATTLIST lab ID ID #REQUIRED managers IDREFS #IMPLIED worksAt IDREF #IMPLIED>
<!ATTLIST paper ID ID #REQUIRED source IDREF #IMPLIED category CDATA #IMPLIED biologist IDREF #IMPLIED>
<!ATTLIST biologist ID ID #REQUIRED age CDATA #IMPLIED worksAt IDREFS #IMPLIED>
`

// BioXML is the paper's Figure 1 sample document (biology labs and
// publications).
const BioXML = `<?xml version="1.0"?>
<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name>
      <city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location>
      <city>Seattle</city>
      <country>USA</country>
    </location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name>
    <city>Philadelphia</city>
    <country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1">
    <lastname>Smith</lastname>
  </biologist>
  <biologist ID="jones1" age="32">
    <lastname>Jones</lastname>
  </biologist>
</db>`

// Bio parses the Figure 1 document with its DTD. It panics on error; the
// fixture is constant.
func Bio() *xmltree.Document {
	dtd := xmltree.MustParseDTD(BioDTD)
	doc, err := xmltree.ParseWith(BioXML, xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		panic(err)
	}
	return doc
}

// CustDTD is the Figure 4 customer-database DTD (a simplified TPC-W schema).
// The paper's prose mentions an Order Status element used in the Outer Union
// example (Figure 5) and Example 8, so Status is included alongside Date.
const CustDTD = `
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, Status?, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty, comment?)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT City (#PCDATA)>
<!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)>
<!ELEMENT Status (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)>
<!ELEMENT Qty (#PCDATA)>
<!ELEMENT comment (#PCDATA)>
`

// CustXML is a small customer database instance exercising every element of
// the Figure 4 DTD, including the orders of Example 8.
const CustXML = `<CustDB>
  <Customer>
    <Name>John</Name>
    <Address><City>Seattle</City><State>WA</State></Address>
    <Order>
      <Date>2000-05-01</Date>
      <Status>ready</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>4</Qty></OrderLine>
      <OrderLine><ItemName>wrench</ItemName><Qty>1</Qty></OrderLine>
    </Order>
    <Order>
      <Date>2000-06-12</Date>
      <Status>shipped</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>2</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>Mary</Name>
    <Address><City>Portland</City><State>OR</State></Address>
    <Order>
      <Date>2000-07-04</Date>
      <Status>ready</Status>
      <OrderLine><ItemName>hammer</ItemName><Qty>1</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>John</Name>
    <Address><City>Sacramento</City><State>CA</State></Address>
  </Customer>
</CustDB>`

// Cust parses the customer database with its DTD. It panics on error.
func Cust() *xmltree.Document {
	dtd := xmltree.MustParseDTD(CustDTD)
	doc, err := xmltree.ParseWith(CustXML, xmltree.ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		panic(err)
	}
	return doc
}

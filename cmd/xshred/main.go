// Command xshred shreds an XML document into the Shared Inlining relational
// schema (§5.1), prints the generated schema and table statistics, and can
// round-trip the document back out of the tables.
//
// Usage:
//
//	xshred -doc custdb.xml [-dtd custdb.dtd] [-dump] [-reconstruct] [-edge]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func main() {
	var (
		docPath     = flag.String("doc", "", "XML document to shred (required)")
		dtdPath     = flag.String("dtd", "", "external DTD (required unless the document has an internal subset)")
		dump        = flag.Bool("dump", false, "dump table contents")
		reconstruct = flag.Bool("reconstruct", false, "rebuild and print the document from the tables")
		edge        = flag.Bool("edge", false, "use the Edge mapping instead of Shared Inlining")
		order       = flag.Bool("order", false, "store an order column (pos)")
	)
	flag.Parse()
	if err := run(*docPath, *dtdPath, *dump, *reconstruct, *edge, *order); err != nil {
		fmt.Fprintln(os.Stderr, "xshred:", err)
		os.Exit(1)
	}
}

func run(docPath, dtdPath string, dump, reconstruct, edge, order bool) error {
	if docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	src, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	opts := xmltree.ParseOptions{TrimText: true}
	if dtdPath != "" {
		d, err := os.ReadFile(dtdPath)
		if err != nil {
			return err
		}
		dtd, err := xmltree.ParseDTD(string(d))
		if err != nil {
			return err
		}
		opts.DTD = dtd
	}
	doc, err := xmltree.ParseWith(string(src), opts)
	if err != nil {
		return err
	}
	db := relational.NewDB()

	if edge {
		n, err := shred.LoadEdge(db, doc)
		if err != nil {
			return err
		}
		fmt.Printf("Edge mapping: %d edge tuples\n", n)
		if dump {
			dumpTable(db, "Edge")
		}
		if reconstruct {
			re, err := shred.ReconstructEdge(db)
			if err != nil {
				return err
			}
			fmt.Println(re.Indented())
		}
		return nil
	}

	if doc.DTD == nil {
		return fmt.Errorf("Shared Inlining requires a DTD (use -dtd, or -edge for the DTD-less mapping)")
	}
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: order})
	if err != nil {
		return err
	}
	fmt.Println("-- generated schema --")
	for _, sql := range m.CreateTablesSQL() {
		fmt.Println(sql + ";")
	}
	ds, err := shred.Load(db, m, doc)
	if err != nil {
		return err
	}
	fmt.Printf("-- loaded %d tuples --\n", ds.TupleCount())
	for _, elem := range m.TableOrder {
		tm := m.Table(elem)
		fmt.Printf("%-24s %6d rows (element <%s>, parent %q)\n",
			tm.Name, db.Table(tm.Name).RowCount(), tm.Element, tm.Parent)
	}
	if dump {
		for _, elem := range m.TableOrder {
			dumpTable(db, m.Table(elem).Name)
		}
	}
	if reconstruct {
		re, err := shred.Reconstruct(db, m)
		if err != nil {
			return err
		}
		fmt.Println(re.Indented())
	}
	return nil
}

func dumpTable(db *relational.DB, name string) {
	t := db.Table(name)
	if t == nil {
		return
	}
	var cols []string
	for _, c := range t.Schema.Columns {
		cols = append(cols, c.Name)
	}
	fmt.Printf("\n-- %s (%s) --\n", name, strings.Join(cols, ", "))
	t.Scan(func(_ int, row []relational.Value) bool {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = relational.FormatValue(v)
		}
		fmt.Println("  " + strings.Join(parts, ", "))
		return true
	})
}

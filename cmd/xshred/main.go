// Command xshred shreds an XML document into the Shared Inlining relational
// schema (§5.1), prints the generated schema and table statistics, and can
// round-trip the document back out of the tables.
//
// Usage:
//
//	xshred -doc custdb.xml [-dtd custdb.dtd] [-dump] [-reconstruct] [-edge]
//
// With -data, the shredded tables live in a persistent, write-ahead-logged
// store: the first invocation shreds -doc into the directory; later
// invocations (no -doc needed) reopen it, so xupdate -data can apply
// updates between xshred runs:
//
//	xshred -data ./store -doc custdb.xml -dtd custdb.dtd   # initialize
//	xshred -data ./store -reconstruct                      # inspect later
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func main() {
	var (
		docPath     = flag.String("doc", "", "XML document to shred (required without -data)")
		dtdPath     = flag.String("dtd", "", "external DTD (required unless the document has an internal subset)")
		dump        = flag.Bool("dump", false, "dump table contents")
		reconstruct = flag.Bool("reconstruct", false, "rebuild and print the document from the tables")
		edge        = flag.Bool("edge", false, "use the Edge mapping instead of Shared Inlining")
		order       = flag.Bool("order", false, "store an order column (pos)")
		dataDir     = flag.String("data", "", "persistent store directory (shred once, reopen later)")
	)
	flag.Parse()
	var err error
	if *dataDir != "" {
		err = runData(*dataDir, *docPath, *dtdPath, *dump, *reconstruct, *edge, *order)
	} else {
		err = run(*docPath, *dtdPath, *dump, *reconstruct, *edge, *order)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xshred:", err)
		os.Exit(1)
	}
}

// runData shreds into (or reopens) a persistent store.
func runData(dataDir, docPath, dtdPath string, dump, reconstruct, edge, order bool) error {
	if edge {
		return fmt.Errorf("-edge has no persistent form; use Shared Inlining with -data")
	}
	var doc *xmltree.Document
	if docPath != "" {
		var err error
		if doc, err = xmltree.LoadFile(docPath, dtdPath); err != nil {
			return err
		}
	}
	s, err := engine.OpenDir(dataDir, doc, engine.Options{OrderColumn: order}, relational.Options{})
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Println("-- schema --")
	for _, sql := range s.M.CreateTablesSQL() {
		fmt.Println(sql + ";")
	}
	fmt.Printf("-- %d tuples stored, next id %d --\n", s.TupleCount(), s.NextID())
	for _, elem := range s.M.TableOrder {
		tm := s.M.Table(elem)
		fmt.Printf("%-24s %6d rows (element <%s>, parent %q)\n",
			tm.Name, s.DB.RowCount(tm.Name), tm.Element, tm.Parent)
	}
	if dump {
		for _, elem := range s.M.TableOrder {
			dumpTable(s.DB, s.M.Table(elem).Name)
		}
	}
	if reconstruct {
		re, err := shred.Reconstruct(s.DB, s.M)
		if err != nil {
			return err
		}
		fmt.Println(re.Indented())
	}
	return nil
}

func run(docPath, dtdPath string, dump, reconstruct, edge, order bool) error {
	if docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	doc, err := xmltree.LoadFile(docPath, dtdPath)
	if err != nil {
		return err
	}
	db := relational.NewDB()

	if edge {
		n, err := shred.LoadEdge(db, doc)
		if err != nil {
			return err
		}
		fmt.Printf("Edge mapping: %d edge tuples\n", n)
		if dump {
			dumpTable(db, "Edge")
		}
		if reconstruct {
			re, err := shred.ReconstructEdge(db)
			if err != nil {
				return err
			}
			fmt.Println(re.Indented())
		}
		return nil
	}

	if doc.DTD == nil {
		return fmt.Errorf("Shared Inlining requires a DTD (use -dtd, or -edge for the DTD-less mapping)")
	}
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: order})
	if err != nil {
		return err
	}
	fmt.Println("-- generated schema --")
	for _, sql := range m.CreateTablesSQL() {
		fmt.Println(sql + ";")
	}
	ds, err := shred.Load(db, m, doc)
	if err != nil {
		return err
	}
	fmt.Printf("-- loaded %d tuples --\n", ds.TupleCount())
	for _, elem := range m.TableOrder {
		tm := m.Table(elem)
		fmt.Printf("%-24s %6d rows (element <%s>, parent %q)\n",
			tm.Name, db.Table(tm.Name).RowCount(), tm.Element, tm.Parent)
	}
	if dump {
		for _, elem := range m.TableOrder {
			dumpTable(db, m.Table(elem).Name)
		}
	}
	if reconstruct {
		re, err := shred.Reconstruct(db, m)
		if err != nil {
			return err
		}
		fmt.Println(re.Indented())
	}
	return nil
}

func dumpTable(db *relational.DB, name string) {
	t := db.Table(name)
	if t == nil {
		return
	}
	var cols []string
	for _, c := range t.Schema.Columns {
		cols = append(cols, c.Name)
	}
	fmt.Printf("\n-- %s (%s) --\n", name, strings.Join(cols, ", "))
	t.Scan(func(_ int, row []relational.Value) bool {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = relational.FormatValue(v)
		}
		fmt.Println("  " + strings.Join(parts, ", "))
		return true
	})
}

// Command xbench regenerates the paper's evaluation (§7): Figures 6–11,
// Table 2, the §7.2 ASR path study, the §7.3 cascade comparison, and the
// §7.1.2 randomized-document replication — plus the post-paper scenarios:
// concurrent snapshot readers and write-ahead-log commit throughput.
//
// Usage:
//
//	xbench -exp fig6                  # one experiment
//	xbench -exp all -quick            # everything, at reduced scale
//	xbench -exp table2 -runs 5
//	xbench -exp durability            # WAL commits/sec across fsync modes
//	xbench -exp all -json out.json    # also write results as JSON
//
// With -json, every experiment's structured results are written to the
// given file keyed by experiment id, so a PR-over-PR performance
// trajectory can be recorded mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: fig6…fig11, table2, asrpath, cascade, randdoc, readers, parallel, durability, micro, text, obsv, storage, or all")
		quick    = flag.Bool("quick", false, "reduced parameter grid")
		runs     = flag.Int("runs", 4, "measured runs per point (one warm-up run is added and discarded)")
		readers  = flag.Int("readers", 4, "max reader goroutines for the concurrent snapshot-read scenario (-exp readers)")
		writer   = flag.String("writer", "rollback", "writer mode for -exp readers: rollback (abort cycles), live (commit cycles), or both")
		workers  = flag.Int("workers", 8, "max worker budget for the parallel-executor sweep (-exp parallel)")
		jsonPath = flag.String("json", "", "write experiment results as JSON to this file")
		stats    = flag.Bool("stats", false, "print the aggregated engine Stats counters as JSON after the run")
		trace    = flag.Bool("trace", false, "capture statement trace spans in the obsv experiment")
	)
	flag.Parse()
	cfg := bench.Config{Runs: *runs, Quick: *quick}
	bench.CollectStats(*stats)
	results := make(map[string]any)
	if err := run(*exp, cfg, *readers, *writer, *workers, *trace, results); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Println("engine stats (aggregated over measured runs):")
		if err := bench.WriteStats(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, results map[string]any) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

type figRunner struct {
	id  string
	run func(bench.Config) (*bench.Figure, error)
}

var figures = []figRunner{
	{"fig6", bench.RunFig6},
	{"fig7", bench.RunFig7},
	{"fig8", bench.RunFig8},
	{"fig9", bench.RunFig9},
	{"fig10", bench.RunFig10},
	{"fig11", bench.RunFig11},
	{"cascade", bench.RunCascadeComparison},
	{"randdoc", bench.RunRandomizedDelete},
}

func run(exp string, cfg bench.Config, readers int, writer string, workers int, trace bool, results map[string]any) error {
	matched := false
	for _, f := range figures {
		if exp == "all" || exp == f.id {
			matched = true
			fig, err := f.run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", f.id, err)
			}
			results[f.id] = fig
			bench.WriteFigure(os.Stdout, fig)
			fmt.Println()
		}
	}
	if exp == "all" || exp == "table2" {
		matched = true
		rows, err := bench.RunTable2(cfg)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		results["table2"] = rows
		bench.WriteTable2(os.Stdout, rows)
		fmt.Println()
	}
	if exp == "all" || exp == "asrpath" {
		matched = true
		pts, err := bench.RunASRPath(cfg)
		if err != nil {
			return fmt.Errorf("asrpath: %w", err)
		}
		results["asrpath"] = pts
		bench.WriteASRPath(os.Stdout, pts)
		fmt.Println()
	}
	if exp == "readers" {
		matched = true
		modes := []string{writer}
		if writer == "both" {
			modes = []string{"rollback", "live"}
		}
		for _, mode := range modes {
			if mode != "rollback" && mode != "live" {
				return fmt.Errorf("readers: unknown writer mode %q (want rollback, live, or both)", mode)
			}
			pts, err := bench.RunConcurrentReaders(cfg, readers, mode)
			if err != nil {
				return fmt.Errorf("readers (%s writer): %w", mode, err)
			}
			key := "readers"
			if mode == "live" {
				key = "readers-live"
			}
			results[key] = pts
			bench.WriteConcurrentReads(os.Stdout, pts)
			fmt.Println()
		}
	}
	if exp == "parallel" {
		// Like readers, a scheduling-sensitive scenario: opt-in rather than
		// part of "all", so the default suite stays stable on small boxes.
		matched = true
		res, err := bench.RunParallel(cfg, workers)
		if err != nil {
			return fmt.Errorf("parallel: %w", err)
		}
		results["parallel"] = res
		bench.WriteParallel(os.Stdout, res)
		fmt.Println()
	}
	if exp == "storage" {
		// Disk-sensitive like durability but with real page files and
		// eviction churn: opt-in rather than part of "all".
		matched = true
		res, err := bench.RunStorage(cfg)
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		results["storage"] = res
		bench.WriteStorage(os.Stdout, res)
		fmt.Println()
	}
	if exp == "all" || exp == "durability" {
		matched = true
		pts, err := bench.RunDurability(cfg)
		if err != nil {
			return fmt.Errorf("durability: %w", err)
		}
		results["durability"] = pts
		bench.WriteDurability(os.Stdout, pts)
		fmt.Println()
	}
	if exp == "all" || exp == "text" {
		matched = true
		res, err := bench.RunText(cfg)
		if err != nil {
			return fmt.Errorf("text: %w", err)
		}
		results["text"] = res
		bench.WriteText(os.Stdout, res)
		fmt.Println()
	}
	if exp == "all" || exp == "obsv" {
		matched = true
		res, err := bench.RunObsv(cfg, trace)
		if err != nil {
			return fmt.Errorf("obsv: %w", err)
		}
		results["obsv"] = res
		bench.WriteObsv(os.Stdout, res)
		fmt.Println()
	}
	if exp == "all" || exp == "micro" {
		matched = true
		res, err := bench.RunMicro(cfg)
		if err != nil {
			return fmt.Errorf("micro: %w", err)
		}
		results["micro"] = res
		bench.WriteMicro(os.Stdout, res)
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// Command xupdate applies an XQuery update statement (the paper's §4 syntax)
// to an XML document and prints the result.
//
// Two engines are available. The default is the direct-DOM engine over a
// document file:
//
//	xupdate -doc bio.xml [-dtd bio.dtd] [-name bio.xml] (-query 'FOR …' | -queryfile q.xq)
//
// With -data, statements run against a persistent relational store backed
// by a write-ahead log: the first invocation shreds -doc into the data
// directory, later invocations reopen it (no -doc needed) — updates commit
// through the log, so the store survives process restarts and crashes:
//
//	xupdate -data ./store -doc custdb.xml -dtd custdb.dtd -query '…'   # initialize + update
//	xupdate -data ./store -query 'FOR … RETURN $c'                     # later run: query via SOU
//
// The -name flag sets the name document("…") expressions resolve to; it
// defaults to the -doc path's base name (persistent stores accept any name).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/update"
	"repro/internal/wal"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

type cliOptions struct {
	docPath, dtdPath, docName string
	query, queryFile          string
	unordered, indent         bool

	dataDir    string
	fsync      string
	order      bool
	checkpoint bool
}

func main() {
	var o cliOptions
	flag.StringVar(&o.docPath, "doc", "", "XML document to update (required unless -data holds a store)")
	flag.StringVar(&o.dtdPath, "dtd", "", "external DTD classifying ID/IDREF/IDREFS attributes")
	flag.StringVar(&o.docName, "name", "", `name for document("…") resolution (default: base name of -doc)`)
	flag.StringVar(&o.query, "query", "", "update statement text")
	flag.StringVar(&o.queryFile, "queryfile", "", "file containing the update statement")
	flag.BoolVar(&o.unordered, "unordered", false, "use the unordered execution model (DOM engine)")
	flag.BoolVar(&o.indent, "indent", true, "pretty-print the output document")
	flag.StringVar(&o.dataDir, "data", "", "persistent store directory (relational engine + write-ahead log)")
	flag.StringVar(&o.fsync, "fsync", "group", "WAL fsync policy with -data: always, group, or off")
	flag.BoolVar(&o.order, "order", false, "store an order column when initializing -data (positional operations)")
	flag.BoolVar(&o.checkpoint, "checkpoint", false, "checkpoint the store before exiting (-data)")
	flag.Parse()
	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xupdate:", err)
		os.Exit(1)
	}
}

func run(o cliOptions, stdout, stderr io.Writer) error {
	if (o.query == "") == (o.queryFile == "") {
		return fmt.Errorf("exactly one of -query and -queryfile is required")
	}
	if o.queryFile != "" {
		b, err := os.ReadFile(o.queryFile)
		if err != nil {
			return err
		}
		o.query = string(b)
	}
	if o.dataDir != "" {
		return runData(o, stdout, stderr)
	}
	return runDOM(o, stdout, stderr)
}

// runData executes the statement against the persistent relational store.
func runData(o cliOptions, stdout, stderr io.Writer) error {
	mode, err := wal.ParseSyncMode(o.fsync)
	if err != nil {
		return err
	}
	var doc *xmltree.Document
	if o.docPath != "" {
		var err error
		if doc, err = xmltree.LoadFile(o.docPath, o.dtdPath); err != nil {
			return err
		}
	}
	s, err := engine.OpenDir(o.dataDir, doc, engine.Options{OrderColumn: o.order},
		relational.Options{Sync: mode})
	if err != nil {
		return err
	}
	defer s.Close()

	stmt, err := xquery.Parse(o.query)
	if err != nil {
		return err
	}
	if stmt.IsQuery() {
		subs, err := s.QuerySubtrees(stmt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "matched %d subtrees\n", len(subs))
		for _, e := range subs {
			fmt.Fprintln(stdout, xmltree.SerializeWith(e, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true}))
		}
	} else {
		n, err := s.Exec(stmt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "updated %d binding tuples\n", n)
		out, err := s.Reconstruct()
		if err != nil {
			return err
		}
		if o.indent {
			fmt.Fprintln(stdout, out.Indented())
		} else {
			fmt.Fprintln(stdout, out.String())
		}
	}
	if o.checkpoint {
		if err := s.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}

// runDOM is the original in-memory document engine.
func runDOM(o cliOptions, stdout, stderr io.Writer) error {
	if o.docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	doc, err := xmltree.LoadFile(o.docPath, o.dtdPath)
	if err != nil {
		return err
	}
	docName := o.docName
	if docName == "" {
		docName = filepath.Base(o.docPath)
	}
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{docName: doc}
	if o.unordered {
		ev.Model = update.Unordered
	}
	stmt, err := xquery.Parse(o.query)
	if err != nil {
		return err
	}
	res, err := ev.Exec(stmt)
	if err != nil {
		return err
	}
	if stmt.IsQuery() {
		fmt.Fprintf(stderr, "matched %d tuples, %d items\n", res.Tuples, len(res.Items))
		for _, it := range res.Items {
			switch v := it.(type) {
			case *xmltree.Element:
				fmt.Fprintln(stdout, xmltree.SerializeWith(v, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true}))
			default:
				fmt.Fprintln(stdout, xpath.StringValue(it))
			}
		}
		return nil
	}
	fmt.Fprintf(stderr, "updated %d binding tuples\n", res.Tuples)
	if o.indent {
		fmt.Fprintln(stdout, doc.Indented())
	} else {
		fmt.Fprintln(stdout, doc.String())
	}
	return nil
}

// Command xupdate applies an XQuery update statement (the paper's §4 syntax)
// to an XML document using the direct-DOM engine, and prints the updated
// document.
//
// Usage:
//
//	xupdate -doc bio.xml [-dtd bio.dtd] [-name bio.xml] (-query 'FOR …' | -queryfile q.xq)
//
// The -name flag sets the name document("…") expressions resolve to; it
// defaults to the -doc path's base name.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

func main() {
	var (
		docPath   = flag.String("doc", "", "XML document to update (required)")
		dtdPath   = flag.String("dtd", "", "external DTD classifying ID/IDREF/IDREFS attributes")
		docName   = flag.String("name", "", `name for document("…") resolution (default: base name of -doc)`)
		query     = flag.String("query", "", "update statement text")
		queryFile = flag.String("queryfile", "", "file containing the update statement")
		unordered = flag.Bool("unordered", false, "use the unordered execution model")
		indent    = flag.Bool("indent", true, "pretty-print the output document")
	)
	flag.Parse()
	if err := run(*docPath, *dtdPath, *docName, *query, *queryFile, *unordered, *indent); err != nil {
		fmt.Fprintln(os.Stderr, "xupdate:", err)
		os.Exit(1)
	}
}

func run(docPath, dtdPath, docName, query, queryFile string, unordered, indent bool) error {
	if docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	if (query == "") == (queryFile == "") {
		return fmt.Errorf("exactly one of -query and -queryfile is required")
	}
	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	}
	src, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	opts := xmltree.ParseOptions{TrimText: true}
	if dtdPath != "" {
		d, err := os.ReadFile(dtdPath)
		if err != nil {
			return err
		}
		dtd, err := xmltree.ParseDTD(string(d))
		if err != nil {
			return err
		}
		opts.DTD = dtd
	}
	doc, err := xmltree.ParseWith(string(src), opts)
	if err != nil {
		return err
	}
	if docName == "" {
		docName = filepath.Base(docPath)
	}
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{docName: doc}
	if unordered {
		ev.Model = update.Unordered
	}
	stmt, err := xquery.Parse(query)
	if err != nil {
		return err
	}
	res, err := ev.Exec(stmt)
	if err != nil {
		return err
	}
	if stmt.IsQuery() {
		fmt.Fprintf(os.Stderr, "matched %d tuples, %d items\n", res.Tuples, len(res.Items))
		for _, it := range res.Items {
			switch v := it.(type) {
			case *xmltree.Element:
				fmt.Println(xmltree.SerializeWith(v, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true}))
			default:
				fmt.Println(xpath.StringValue(it))
			}
		}
		return nil
	}
	fmt.Fprintf(os.Stderr, "updated %d binding tuples\n", res.Tuples)
	if indent {
		fmt.Println(doc.Indented())
	} else {
		fmt.Println(doc.String())
	}
	return nil
}

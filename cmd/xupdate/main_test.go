package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testdocs"
)

// TestDataDirRoundTrip is the acceptance end-to-end: shred a document into
// a -data directory, apply an update, then — in fresh invocations standing
// in for process restarts (each run opens, recovers, and closes its own
// store) — query and get identical Sorted-Outer-Union reconstruction
// output every time.
func TestDataDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "custdb.xml")
	dtdPath := filepath.Join(dir, "custdb.dtd")
	dataDir := filepath.Join(dir, "store")
	if err := os.WriteFile(docPath, []byte(testdocs.CustXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dtdPath, []byte(testdocs.CustDTD), 0o644); err != nil {
		t.Fatal(err)
	}

	invoke := func(o cliOptions) (string, string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if err := run(o, &stdout, &stderr); err != nil {
			t.Fatalf("run(%+v): %v", o, err)
		}
		return stdout.String(), stderr.String()
	}

	// Invocation 1: initialize the store and apply an update.
	updateQ := `
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"],
    $st IN $o/Status
UPDATE $o {
    REPLACE $st WITH <Status>suspended</Status>
}`
	_, errOut := invoke(cliOptions{
		dataDir: dataDir, docPath: docPath, dtdPath: dtdPath,
		query: updateQ, fsync: "group", indent: true,
	})
	if !strings.Contains(errOut, "updated 1 binding tuples") {
		t.Fatalf("update run reported: %q", errOut)
	}

	// Invocation 2: a fresh "process" queries the store — no -doc given,
	// everything recovers from the data directory.
	queryQ := `FOR $c IN document("custdb.xml")/CustDB/Customer RETURN $c`
	out1, _ := invoke(cliOptions{dataDir: dataDir, query: queryQ, fsync: "group"})
	if !strings.Contains(out1, "suspended") {
		t.Fatalf("query after restart lost the update:\n%s", out1)
	}
	if !strings.Contains(out1, "<Customer>") {
		t.Fatalf("query output is not a subtree reconstruction:\n%s", out1)
	}

	// Invocation 3: restart again (with a checkpoint on exit this time) and
	// re-query — byte-identical SOU output.
	out2, _ := invoke(cliOptions{dataDir: dataDir, query: queryQ, fsync: "off", checkpoint: true})
	if out2 != out1 {
		t.Fatalf("SOU reconstruction differs across restarts:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}

	// Invocation 4: after the checkpoint truncated the log, output is still
	// identical.
	out3, _ := invoke(cliOptions{dataDir: dataDir, query: queryQ, fsync: "group"})
	if out3 != out1 {
		t.Fatalf("SOU reconstruction differs after checkpointed restart")
	}
}

// Command xgen generates the paper's workloads (§7.1) as XML documents on
// stdout, with the DTD either inline (DOCTYPE) or on a separate file.
//
// Usage:
//
//	xgen -kind fixed -sf 100 -depth 8 -fanout 1 > doc.xml
//	xgen -kind random -sf 100 -depth 6 -fanout 4 > doc.xml
//	xgen -kind dblp -conferences 40 -pubs 60 > dblp.xml
//	xgen -kind fixed -sf 10 -depth 2 -fanout 2 -dtdout fixed.dtd > doc.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	var (
		kind        = flag.String("kind", "fixed", "fixed | random | dblp")
		sf          = flag.Int("sf", 100, "scaling factor (subtrees at root level)")
		depth       = flag.Int("depth", 4, "subtree depth (max depth for -kind random)")
		fanout      = flag.Int("fanout", 2, "fanout (max fanout for -kind random)")
		conferences = flag.Int("conferences", 40, "conferences (dblp)")
		pubs        = flag.Int("pubs", 60, "mean publications per conference (dblp)")
		seed        = flag.Int64("seed", 1, "generator seed")
		dtdOut      = flag.String("dtdout", "", "write the DTD to this file instead of inlining a DOCTYPE")
		indent      = flag.Bool("indent", false, "pretty-print")
	)
	flag.Parse()
	if err := run(*kind, *sf, *depth, *fanout, *conferences, *pubs, *seed, *dtdOut, *indent); err != nil {
		fmt.Fprintln(os.Stderr, "xgen:", err)
		os.Exit(1)
	}
}

func run(kind string, sf, depth, fanout, conferences, pubs int, seed int64, dtdOut string, indent bool) error {
	var doc *xmltree.Document
	var dtdText string
	switch kind {
	case "fixed":
		doc = datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: depth, Fanout: fanout, Seed: seed})
		dtdText = datagen.FixedDTD(depth)
	case "random":
		doc = datagen.Randomized(datagen.RandomizedParams{ScalingFactor: sf, MaxDepth: depth, MaxFanout: fanout, Seed: seed})
		dtdText = datagen.FixedDTD(depth)
	case "dblp":
		doc = datagen.DBLP(datagen.DBLPParams{Conferences: conferences, PubsPerConf: pubs, Seed: seed})
		dtdText = datagen.DBLPDTD
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if dtdOut != "" {
		if err := os.WriteFile(dtdOut, []byte(dtdText), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Printf("<!DOCTYPE %s [\n%s]>\n", doc.Root.Name, dtdText)
	}
	if indent {
		fmt.Println(doc.Indented())
	} else {
		fmt.Println(doc.String())
	}
	return nil
}

// Biolab runs the paper's worked examples (Examples 1–5, §4.2) against the
// Figure 1 bio-lab document in sequence, printing the document after each
// update. The final state of university ucla matches Figure 3.
package main

import (
	"fmt"
	"log"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

var examples = []struct {
	title string
	query string
}{
	{
		"Example 1 — deleting an attribute, an IDREF, and a subelement",
		`FOR $p IN document("bio.xml")/db/paper,
		     $cat IN $p/@category,
		     $bio IN $p/ref(biologist,"smith1"),
		     $ti IN $p/title
		 UPDATE $p {
		     DELETE $cat,
		     DELETE $bio,
		     DELETE $ti
		 }`,
	},
	{
		"Example 2 — inserting an attribute, two references, and a subelement",
		`FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
		 UPDATE $bio {
		     INSERT new_attribute(age,"29"),
		     INSERT new_ref(worksAt,"ucla"),
		     INSERT new_ref(worksAt,"baselab"),
		     INSERT <firstname>Jeff</firstname>
		 }`,
	},
	{
		"Example 3 — positional insertion relative to existing content",
		`FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
		     $n IN $lab/name,
		     $sref IN $lab/ref(managers,"smith1")
		 UPDATE $lab {
		     INSERT "jones1" BEFORE $sref,
		     INSERT <street>Oak</street> AFTER $n
		 }`,
	},
	{
		"Example 4 — replacing elements, references, and attributes",
		`FOR $lab in document("bio.xml")/db/lab[@ID="lab2"],
		     $name IN $lab/name
		 UPDATE $lab {
		     REPLACE $name WITH <name>Fancy Lab</>
		 }`,
	},
	{
		"Example 5 — multi-level nested update (produces Figure 3's university)",
		`FOR $u in document("bio.xml")/db/university[@ID="ucla"],
		     $lab IN $u/lab
		 WHERE $lab.index() = 0
		 UPDATE $u {
		     INSERT new_attribute(labs,"2"),
		     INSERT <lab ID="newlab">
		         <name>UCLA Secondary Lab</name>
		     </lab> BEFORE $lab,
		     FOR $l1 IN $u/lab,
		         $labname IN $l1/name,
		         $ci IN $l1/city
		     UPDATE $l1 {
		         REPLACE $labname WITH <name>UCLA Primary Lab</>,
		         DELETE $ci
		     }
		 }`,
	},
}

func main() {
	doc := testdocs.Bio()
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"bio.xml": doc}

	for _, ex := range examples {
		fmt.Println("==", ex.title, "==")
		res, err := ev.ExecString(ex.query)
		if err != nil {
			log.Fatalf("%s: %v", ex.title, err)
		}
		fmt.Printf("   (%d binding tuple(s))\n", res.Tuples)
	}

	fmt.Println("\n== final document (university matches Figure 3) ==")
	fmt.Println(doc.Indented())
}

// Replication demonstrates update deltas (§1's motivation: incremental
// changes for mirroring, caching, and replication). An update runs on the
// primary copy of the bio-lab document while a recorder captures the
// primitive operations; the delta is serialized to XML — the transmission
// format — parsed back, and replayed on a replica, which converges to the
// primary byte for byte. The replica is then validated against the DTD.
package main

import (
	"fmt"
	"log"

	"repro/internal/delta"
	"repro/internal/testdocs"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

func main() {
	primary := testdocs.Bio()
	replica := testdocs.Bio()

	// Run the paper's Example 5 (the multi-level nested update) on the
	// primary while recording a delta.
	ev := xquery.NewEvaluator(primary)
	ev.Ctx.Documents = map[string]*xmltree.Document{"bio.xml": primary}
	rec := delta.NewRecorder(primary)
	stmt := xquery.MustParse(`
FOR $u in document("bio.xml")/db/university[@ID="ucla"],
    $lab IN $u/lab
WHERE $lab.index() = 0
UPDATE $u {
    INSERT new_attribute(labs,"2"),
    INSERT <lab ID="newlab"><name>UCLA Secondary Lab</name></lab> BEFORE $lab,
    FOR $l1 IN $u/lab,
        $labname IN $l1/name,
        $ci IN $l1/city
    UPDATE $l1 {
        REPLACE $labname WITH <name>UCLA Primary Lab</>,
        DELETE $ci
    }
}`)
	if err := delta.ExecRecorded(ev, stmt, rec); err != nil {
		log.Fatal(err)
	}
	d, err := rec.Delta()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== recorded delta (operation log) ==")
	fmt.Print(d.Summary())

	wire := d.ToXML()
	fmt.Println("\n== transmission format ==")
	fmt.Println(wire)

	// The replica receives only the wire form.
	received, err := delta.ParseXML(wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := received.Apply(replica, update.Ordered); err != nil {
		log.Fatal(err)
	}

	if replica.String() == primary.String() {
		fmt.Println("\n== replica converged to primary ==")
	} else {
		fmt.Println("\n!! replica diverged !!")
	}

	errs := replica.Validate(nil)
	hard := 0
	for _, e := range errs {
		if !e.IsDangling() {
			hard++
			fmt.Println("validation:", e)
		}
	}
	fmt.Printf("replica validates against the DTD: %d hard errors\n", hard)
}

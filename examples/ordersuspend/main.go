// Ordersuspend demonstrates the Example 8 correctness issue (§6): an outer
// operation changes the Status that the nested selection depends on. With
// naive top-down translation the nested update would match nothing; the
// engine's §6.3 bind-first algorithm computes every binding before executing
// any sub-operation, so the tire order lines still receive their recall
// comment. Both the direct-DOM engine and the relational engine are shown.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

const domQuery = `
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"]
UPDATE $o {
    INSERT <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`

const sqlQuery = `
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"],
    $st IN $o/Status
UPDATE $o {
    REPLACE $st WITH <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`

func main() {
	// Direct-DOM execution.
	doc := testdocs.Cust()
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"custdb.xml": doc}
	if _, err := ev.ExecString(domQuery); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== direct-DOM engine ==")
	report(doc)

	// Relational execution. (The relational mapping inlines the optional
	// Status element, so the second Status of the abstract example becomes
	// a REPLACE — the correctness property under test is identical: the
	// nested selection is bound before the outer operation executes.)
	s, err := engine.Open(testdocs.Cust(), engine.Options{Delete: engine.PerTupleTrigger})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.ExecString(sqlQuery); err != nil {
		log.Fatal(err)
	}
	rdoc, err := s.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== relational engine (XQuery translated to SQL) ==")
	report(rdoc)
}

func report(doc *xmltree.Document) {
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name != "Order" {
			return true
		}
		date := e.FirstChildNamed("Date").TextContent()
		var statuses []string
		for _, st := range e.ChildElementsNamed("Status") {
			statuses = append(statuses, st.TextContent())
		}
		recalled := 0
		for _, ol := range e.ChildElementsNamed("OrderLine") {
			if c := ol.FirstChildNamed("comment"); c != nil && c.TextContent() == "recalled" {
				recalled++
			}
		}
		fmt.Printf("order %s: status=%v recalled-lines=%d\n", date, statuses, recalled)
		return false
	})
}

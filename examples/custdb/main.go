// Custdb demonstrates the relational storage path (§5–§6) on the customer
// database of Figure 4: the Shared Inlining schema, the Sorted Outer Union
// query of Example 6, the Example 9 delete under all four strategies, and
// the Example 10 copy under all three insert strategies, with statement
// counts showing each method's cost profile.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/outerunion"
	"repro/internal/shred"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func main() {
	doc := testdocs.Cust()

	// The generated Shared Inlining schema.
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Shared Inlining schema (Figure 4's DTD) ==")
	for _, sql := range m.CreateTablesSQL() {
		fmt.Println(sql + ";")
	}

	// Example 6: return customers named John via Sorted Outer Union.
	s, err := engine.Open(custDoc(), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Example 6: Sorted Outer Union for customers named John ==")
	plan, err := outerunion.BuildPlan(s.M, "Customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.SQL("T.Name_v = 'John'"))
	subs, err := outerunion.Query(s.DB, s.M, "Customer", "T.Name_v = 'John'")
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range subs {
		fmt.Println(xmltree.SerializeWith(st.Root, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true}))
	}

	// Example 9: delete customers named John, comparing all strategies.
	fmt.Println("\n== Example 9: DELETE customers named John — strategy comparison ==")
	for _, method := range []engine.DeleteMethod{
		engine.PerTupleTrigger, engine.PerStatementTrigger, engine.CascadingDelete, engine.ASRDelete,
	} {
		s, err := engine.Open(custDoc(), engine.Options{Delete: method})
		if err != nil {
			log.Fatal(err)
		}
		s.DB.ResetStats()
		n, err := s.ExecString(`
FOR $d IN document("custdb.xml")/CustDB,
    $c IN $d/Customer[Name="John"]
UPDATE $d { DELETE $c }`)
		if err != nil {
			log.Fatal(err)
		}
		st := s.DB.Stats()
		fmt.Printf("%-22s targets=%d statements=%-3d trigger-firings=%-3d rows-deleted=%d\n",
			method, n, st.Statements, st.TriggerFirings, st.RowsDeleted)
	}

	// Example 10: copy Californian customers, comparing insert strategies.
	fmt.Println("\n== Example 10: copy Californian customers — strategy comparison ==")
	for _, method := range []engine.InsertMethod{engine.TupleInsert, engine.TableInsert, engine.ASRInsert} {
		s, err := engine.Open(custDoc(), engine.Options{Insert: method})
		if err != nil {
			log.Fatal(err)
		}
		s.DB.ResetStats()
		n, err := s.CopySubtrees("Customer", "Address_State_v = 'CA'", 1)
		if err != nil {
			log.Fatal(err)
		}
		st := s.DB.Stats()
		fmt.Printf("%-8s copied=%d statements=%-3d rows-inserted=%d\n",
			method, n, st.Statements, st.RowsInserted)
	}
}

func custDoc() *xmltree.Document {
	return testdocs.Cust()
}

// Quickstart: parse an XML document, apply an XQuery update statement with
// the direct-DOM engine, and print the result.
package main

import (
	"fmt"
	"log"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

func main() {
	// The paper's Figure 1 document: biology labs and publications.
	doc := testdocs.Bio()
	fmt.Println("== before ==")
	fmt.Println(doc.Indented())

	// Give biologist smith1 an age, two workplace references, and a first
	// name (the paper's Example 2).
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"bio.xml": doc}
	res, err := ev.ExecString(`
FOR $bio IN document("bio.xml")/db/biologist[@ID="smith1"]
UPDATE $bio {
    INSERT new_attribute(age, "29"),
    INSERT new_ref(worksAt, "ucla"),
    INSERT new_ref(worksAt, "baselab"),
    INSERT <firstname>Jeff</firstname>
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== after (%d binding tuple(s) updated) ==\n", res.Tuples)
	fmt.Println(doc.Indented())
}
